#include "driver/passes.h"

#include "fir/parser.h"
#include "fir/unparse.h"
#include "incr/unit_cache.h"
#include "incr/unit_serial.h"
#include "par/parallelizer.h"
#include "sema/symbols.h"
#include "xform/normalize.h"

namespace ap::driver {

namespace {

std::set<int64_t> collect_parallel_origins(const fir::Program& prog) {
  std::set<int64_t> out;
  for (const auto& u : prog.units) {
    if (u->external_library) continue;
    fir::walk_stmts(u->body, [&](const fir::Stmt& s) {
      if (s.kind == fir::StmtKind::Do && s.omp.parallel && s.origin_id >= 0)
        out.insert(s.origin_id);
      return true;
    });
  }
  return out;
}

bool has_tagged_region(const fir::Program& prog) {
  bool found = false;
  for (const auto& u : prog.units) {
    fir::walk_stmts(u->body, [&](const fir::Stmt& s) {
      if (s.kind == fir::StmtKind::TaggedRegion) found = true;
      return !found;
    });
    if (found) break;
  }
  return found;
}

class ParsePass : public pm::Pass {
 public:
  explicit ParsePass(PipelineContext& cx) : cx_(cx) {}
  std::string_view name() const override { return "parse"; }

  void run(pm::PassState& st) override {
    st.program = fir::parse_program(cx_.app->source, *st.diags);
    if (!st.program) {
      st.fail("parse failed:\n" + st.diags->render_all());
      return;
    }
    if (!cx_.app->annotations.empty()) {
      DiagnosticEngine adiags;
      adiags.set_stream(cx_.app->name + ":annotations");
      if (!cx_.registry.add(cx_.app->annotations, adiags))
        st.fail("annotation parse failed:\n" + adiags.render_all());
    }
  }

 private:
  PipelineContext& cx_;
};

class ConvInlinePass : public pm::Pass {
 public:
  explicit ConvInlinePass(PipelineContext& cx) : cx_(cx) {}
  std::string_view name() const override { return "conv-inline"; }

  void run(pm::PassState& st) override {
    cx_.result->conv_report =
        xform::inline_conventional(*st.program, cx_.opts.conv, *st.diags);
  }

  // Inliner copies legitimately duplicate origin_ids (Table II counts each
  // original loop once across all of its inlined copies).
  void adjust_verify(pm::VerifyOptions& v) override {
    v.unique_origin_ids = false;
  }

 private:
  PipelineContext& cx_;
};

class AnnotInlinePass : public pm::Pass {
 public:
  explicit AnnotInlinePass(PipelineContext& cx) : cx_(cx) {}
  std::string_view name() const override { return "annot-inline"; }

  void run(pm::PassState& st) override {
    cx_.result->annot_report = xform::inline_annotations(
        *st.program, cx_.registry, cx_.opts.annot, *st.diags);
  }

  void adjust_verify(pm::VerifyOptions& v) override {
    v.unique_origin_ids = false;
    // Opens the annotation window: tagged regions and unknown()/unique()
    // are legal from here until reverse-inline closes it.
    v.allow_tagged_regions = true;
    v.allow_annotation_ops = true;
  }

  // Every inlined region must name a callee that exists in the program —
  // reverse inlining re-emits a CALL to it.
  std::string verify_after(const fir::Program& prog) override {
    std::string err;
    for (const auto& u : prog.units) {
      fir::walk_stmts(u->body, [&](const fir::Stmt& s) {
        if (err.empty() && s.kind == fir::StmtKind::TaggedRegion &&
            !prog.find_unit(s.name))
          err = "unit " + u->name + ": tagged region names undefined callee " +
                s.name;
        return err.empty();
      });
    }
    return err;
  }

 private:
  PipelineContext& cx_;
};

class NormalizePass : public pm::Pass {
 public:
  explicit NormalizePass(PipelineContext& cx) : cx_(cx) {}
  std::string_view name() const override { return "normalize"; }
  pm::PassKind kind() const override { return pm::PassKind::PerUnit; }

  void run_unit(fir::ProgramUnit& unit, size_t, DiagnosticEngine&) override {
    if (cx_.opts.par.normalize) xform::normalize_unit(unit);
  }

  // Artifact hooks: the payload is the whole post-normalize unit
  // (incr/unit_serial.h). A restore replaces the current post-inline unit
  // with the cached normalized one, so a warm compile skips normalize for
  // that unit. The driver only enrolls this boundary when par.normalize is
  // on (a disabled normalize is a no-op not worth a payload).
  bool snapshotable() const override { return true; }

  std::string snapshot_unit_artifact(const fir::ProgramUnit& unit,
                                     size_t) override {
    return incr::serialize_unit(unit);
  }

  bool restore_unit_artifact(fir::ProgramUnit& unit, size_t,
                             const std::string& payload) override {
    auto restored = incr::deserialize_unit(payload);
    if (!restored || !*restored) return false;
    // The snapshot carries origin_ids from ITS parse; the parser numbers
    // loops globally, so an edit elsewhere in the program can renumber
    // this unit's loops without changing its content. normalize_unit never
    // adds, removes or reorders DO statements, so the current (pre-
    // normalize) unit's pre-order ids are reassigned positionally onto the
    // restored body.
    std::vector<int64_t> current_ids;
    fir::walk_stmts(unit.body, [&](const fir::Stmt& s) {
      if (s.kind == fir::StmtKind::Do) current_ids.push_back(s.origin_id);
      return true;
    });
    std::vector<fir::Stmt*> restored_dos;
    fir::walk_stmts((*restored)->body, [&](fir::Stmt& s) {
      if (s.kind == fir::StmtKind::Do) restored_dos.push_back(&s);
      return true;
    });
    if (current_ids.size() != restored_dos.size()) return false;
    for (size_t i = 0; i < restored_dos.size(); ++i)
      restored_dos[i]->origin_id = current_ids[i];
    unit = std::move(**restored);
    return true;
  }

 private:
  PipelineContext& cx_;
};

class ParallelizePass : public pm::Pass {
 public:
  explicit ParallelizePass(PipelineContext& cx) : cx_(cx) {}
  std::string_view name() const override { return "parallelize"; }
  pm::PassKind kind() const override { return pm::PassKind::PerUnit; }

  void begin(pm::PassState& st) override {
    // One immutable program-wide context shared by every lane. Sema
    // diagnostics go to scratch: the parallelizer's contract is to analyze
    // best-effort, not to re-report frontend problems.
    DiagnosticEngine scratch;
    sema_ = std::make_unique<sema::SemaContext>(*st.program, scratch);
    slots_.assign(st.program->units.size(), par::ParallelizeResult{});
  }

  void run_unit(fir::ProgramUnit& unit, size_t unit_index,
                DiagnosticEngine&) override {
    slots_[unit_index] = par::parallelize_unit(unit, *sema_, cx_.opts.par);
  }

  // Artifact hooks: the payload is the unit's OMP marks plus its
  // ParallelizeResult ("APUNIT", incr/unit_cache.h). A restore re-applies
  // the marks onto the freshly normalized unit (remapping verdict
  // origin_ids onto the current parse's numbering) and fills the unit's
  // result slot, so a warm compile skips dependence testing entirely.
  bool snapshotable() const override { return true; }

  std::string snapshot_unit_artifact(const fir::ProgramUnit& unit,
                                     size_t unit_index) override {
    return incr::serialize_snapshot(
        incr::snapshot_unit(unit, slots_[unit_index]));
  }

  bool restore_unit_artifact(fir::ProgramUnit& unit, size_t unit_index,
                             const std::string& payload) override {
    auto snap = incr::deserialize_snapshot(payload);
    if (!snap || !incr::apply_snapshot(unit, *snap)) return false;
    slots_[unit_index] = std::move(snap->par);
    return true;
  }

  void end(pm::PassState&) override {
    // Unit-index order: verdict order matches the sequential pipeline no
    // matter which lane finished first.
    for (auto& slot : slots_)
      par::merge_results(cx_.result->par, std::move(slot));
    slots_.clear();
    sema_.reset();
  }

 private:
  PipelineContext& cx_;
  std::unique_ptr<sema::SemaContext> sema_;
  std::vector<par::ParallelizeResult> slots_;  // lanes write disjoint slots
};

class ReverseInlinePass : public pm::Pass {
 public:
  explicit ReverseInlinePass(PipelineContext& cx) : cx_(cx) {}
  std::string_view name() const override { return "reverse-inline"; }

  void run(pm::PassState& st) override {
    cx_.result->reverse_report = xform::reverse_inline(
        *st.program, cx_.registry, *st.diags, cx_.opts.reverse);
    regions_remain_ = has_tagged_region(*st.program);
  }

  void adjust_verify(pm::VerifyOptions& v) override {
    // Close the annotation window — unless reversal left regions behind
    // (possible when hint fallback is disabled for ablation runs).
    v.allow_tagged_regions = regions_remain_;
    v.allow_annotation_ops = regions_remain_;
  }

  // When every region was reversed or replaced by its recorded call, none
  // may survive in the output.
  std::string verify_after(const fir::Program& prog) override {
    if (!regions_remain_ && has_tagged_region(prog))
      return "tagged region survived reverse inlining";
    return {};
  }

 private:
  PipelineContext& cx_;
  bool regions_remain_ = false;
};

class CollectMetricsPass : public pm::Pass {
 public:
  explicit CollectMetricsPass(PipelineContext& cx) : cx_(cx) {}
  std::string_view name() const override { return "collect-metrics"; }

  void run(pm::PassState& st) override {
    cx_.result->parallel_loops = collect_parallel_origins(*st.program);
    cx_.result->code_lines = fir::code_size_lines(*st.program);
  }

 private:
  PipelineContext& cx_;
};

}  // namespace

std::vector<std::unique_ptr<pm::Pass>> build_pass_sequence(
    PipelineContext& cx) {
  std::vector<std::unique_ptr<pm::Pass>> seq;
  seq.push_back(std::make_unique<ParsePass>(cx));
  if (cx.opts.config == InlineConfig::Conventional)
    seq.push_back(std::make_unique<ConvInlinePass>(cx));
  if (cx.opts.config == InlineConfig::Annotation)
    seq.push_back(std::make_unique<AnnotInlinePass>(cx));
  seq.push_back(std::make_unique<NormalizePass>(cx));
  seq.push_back(std::make_unique<ParallelizePass>(cx));
  if (cx.opts.config == InlineConfig::Annotation)
    seq.push_back(std::make_unique<ReverseInlinePass>(cx));
  seq.push_back(std::make_unique<CollectMetricsPass>(cx));
  return seq;
}

}  // namespace ap::driver
