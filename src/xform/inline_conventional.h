// Conventional procedure inlining, reproducing the Polaris strategy the
// paper evaluates (§II):
//
//   * Heuristics — a call site is inlined only when it sits inside a DO
//     loop; the callee must have source available (not an external-library
//     routine), be non-recursive, contain no I/O or STOP, contain at most
//     `max_stmts` statements (Polaris default 150), and make at most
//     `max_callee_calls` further calls (0 by default: compositional
//     routines like FSMP are excluded, paper §II.B.1).
//
//   * Dummy-argument binding —
//       - read-only scalar formals are forward-substituted by the actual
//         expression. When the actual is an indirect array element like
//         T(IX(7)), the substitution creates subscripted subscripts that
//         defeat dependence analysis (paper §II.A.1, Figures 2-3);
//       - written scalar formals get a fresh temporary with copy-in/out;
//       - array formals whose annotated shape matches the actual's leading
//         extents map dimension-by-dimension;
//       - on rank/extent mismatch the caller's array is LINEARIZED: its
//         declaration degrades to a 1-D assumed-size array and every
//         reference in the whole caller is rewritten to the flattened
//         subscript, losing explicit shape information exactly as Polaris
//         does (paper §II.A.2, Figures 4-5). With symbolic extents the
//         flattened subscripts are non-affine and every loop touching the
//         array — including loops far from the call site — loses
//         parallelism.
//
//   * Cleanup — callee locals are renamed fresh, callee COMMON blocks are
//     imported, and subroutines left without any caller are removed
//     (dead-unit elimination), which is what turns "the copy lost its
//     parallelism" into a measurable #par-loss in Table II.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fir/ast.h"
#include "support/diagnostics.h"

namespace ap::xform {

struct ConvInlineOptions {
  size_t max_stmts = 150;
  int max_callee_calls = 0;
  bool require_in_loop = true;
  bool eliminate_dead_units = true;
  int max_passes = 3;  // inlined bodies may expose further call sites
};

struct ConvInlineReport {
  int sites_inlined = 0;
  int sites_skipped = 0;
  int units_removed = 0;
  // Fresh-name counters, one per caller unit, shared across the
  // max_passes iterations. Per-unit (not program-global) so a caller's
  // post-inline text is a pure function of its own dependence closure —
  // the invariant the pass-boundary snapshot keys rely on.
  std::map<std::string, int64_t> fresh_counters;
  std::vector<std::string> notes;  // one line per decision, for tests/logs
};

ConvInlineReport inline_conventional(fir::Program& prog,
                                     const ConvInlineOptions& opts,
                                     DiagnosticEngine& diags);

// Remove subroutines unreachable from any PROGRAM unit. Exposed separately
// for tests. Returns the number of removed units.
int eliminate_dead_units(fir::Program& prog);

}  // namespace ap::xform
