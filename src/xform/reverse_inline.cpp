#include "xform/reverse_inline.h"

#include <map>
#include <optional>
#include <set>

#include "support/text.h"
#include "xform/subst.h"

namespace ap::xform {

namespace {

using fir::Expr;
using fir::ExprKind;
using fir::ExprPtr;
using fir::Stmt;
using fir::StmtKind;
using fir::StmtPtr;

// Matching state: unification bindings plus the tolerance environments.
struct Binder {
  const fir::ProgramUnit* tmpl = nullptr;
  const Stmt* region = nullptr;  // for arg hints

  std::map<std::string, ExprPtr> scalar_bindings;  // formal -> region expr
  std::map<std::string, std::string> dovar_map;    // template var -> region var
  std::map<std::string, ExprPtr> env;  // global -> last matched assigned value

  bool is_scalar_formal(const std::string& name) const {
    if (!tmpl->is_param(name)) return false;
    const fir::VarDecl* d = tmpl->find_decl(name);
    return !d || d->dims.empty();
  }
  bool is_array_formal(const std::string& name) const {
    if (!tmpl->is_param(name)) return false;
    const fir::VarDecl* d = tmpl->find_decl(name);
    return d && !d->dims.empty();
  }
  const Expr* hint_for(const std::string& formal) const {
    for (size_t i = 0; i < tmpl->params.size(); ++i)
      if (ieq(tmpl->params[i], formal)) return region->arg_hints[i].get();
    return nullptr;
  }

  Binder snapshot() const {
    Binder b;
    b.tmpl = tmpl;
    b.region = region;
    for (const auto& [k, v] : scalar_bindings)
      b.scalar_bindings[k] = v->clone();
    b.dovar_map = dovar_map;
    for (const auto& [k, v] : env) b.env[k] = v->clone();
    return b;
  }
};

class Matcher {
 public:
  Matcher(const fir::ProgramUnit& tmpl, const Stmt& region,
          const ReverseInlineOptions& opts)
      : tmpl_(tmpl), region_(region), opts_(opts) {}

  // Attempt the full match; fills `binder` on success.
  bool run(Binder& binder) {
    binder.tmpl = &tmpl_;
    binder.region = &region_;
    return match_block(tmpl_.body, region_.body, binder);
  }

 private:
  const fir::ProgramUnit& tmpl_;
  const Stmt& region_;
  const ReverseInlineOptions& opts_;

  // ---- expressions --------------------------------------------------------

  bool bind_scalar(const std::string& formal, const Expr& r, Binder& b) {
    auto it = b.scalar_bindings.find(formal);
    if (it == b.scalar_bindings.end()) {
      b.scalar_bindings[formal] = r.clone();
      return true;
    }
    if (fir::expr_equal(*it->second, r)) return true;
    // Constant propagation leniency: a literal occurrence is compatible
    // with a non-literal binding (and upgrades a literal one).
    if (r.kind == ExprKind::IntLit || r.kind == ExprKind::RealLit) return true;
    if (it->second->kind == ExprKind::IntLit ||
        it->second->kind == ExprKind::RealLit) {
      b.scalar_bindings[formal] = r.clone();
      return true;
    }
    return false;
  }

  // Match template expression t against region expression r.
  bool match_expr(const Expr& t, const Expr& r, Binder& b) {
    // Scalar formals unify with anything (consistently).
    if (t.kind == ExprKind::VarRef && b.is_scalar_formal(t.name))
      return bind_scalar(t.name, r, b);

    // DO-variable renaming.
    if (t.kind == ExprKind::VarRef) {
      auto it = b.dovar_map.find(t.name);
      if (it != b.dovar_map.end())
        return r.kind == ExprKind::VarRef && r.name == it->second;
    }

    // Array formals: verified against the recorded hint mapping.
    if ((t.kind == ExprKind::ArrayRef || t.kind == ExprKind::VarRef) &&
        b.is_array_formal(t.name))
      return match_mapped_array(t, r, b);

    // Forward-substitution tolerance: a template global read may have been
    // replaced by its (already matched) defining value in the region.
    if (t.kind == ExprKind::VarRef && r.kind != ExprKind::VarRef) {
      if (opts_.tolerate_forward_subst) {
        auto it = b.env.find(t.name);
        if (it != b.env.end() && match_region_value(*it->second, r, b))
          return true;
      }
      // Constant-propagation tolerance (paper §III.C.3): the normalizer
      // replaces a variable by a literal only when they are provably equal
      // at that point, so a literal in a template-variable position is
      // accepted.
      if (opts_.tolerate_literals &&
          (r.kind == ExprKind::IntLit || r.kind == ExprKind::RealLit ||
           r.kind == ExprKind::LogicalLit))
        return true;
      return false;
    }

    if (t.kind != r.kind) return false;
    switch (t.kind) {
      case ExprKind::IntLit: return t.int_val == r.int_val;
      case ExprKind::RealLit: return t.real_val == r.real_val;
      case ExprKind::LogicalLit: return t.logical_val == r.logical_val;
      case ExprKind::StrLit: return t.str_val == r.str_val;
      case ExprKind::VarRef: return t.name == r.name;
      case ExprKind::Unary:
        return t.un_op == r.un_op && match_expr(*t.args[0], *r.args[0], b);
      case ExprKind::Binary: {
        if (t.bin_op != r.bin_op) return false;
        Binder save = b.snapshot();
        if (match_expr(*t.args[0], *r.args[0], b) &&
            match_expr(*t.args[1], *r.args[1], b))
          return true;
        b = save.snapshot();
        if (fir::binop_commutative(t.bin_op))
          return match_expr(*t.args[0], *r.args[1], b) &&
                 match_expr(*t.args[1], *r.args[0], b);
        return false;
      }
      case ExprKind::ArrayRef:
      case ExprKind::Intrinsic:
        if (t.name != r.name || t.args.size() != r.args.size()) return false;
        for (size_t i = 0; i < t.args.size(); ++i)
          if (!match_optional(t.args[i].get(), r.args[i].get(), b)) return false;
        return true;
      case ExprKind::Unknown:
      case ExprKind::Unique:
      case ExprKind::Section:
        if (t.args.size() != r.args.size()) return false;
        for (size_t i = 0; i < t.args.size(); ++i)
          if (!match_optional(t.args[i].get(), r.args[i].get(), b)) return false;
        return true;
    }
    return false;
  }

  bool match_optional(const Expr* t, const Expr* r, Binder& b) {
    if (!t || !r) return t == r;
    return match_expr(*t, *r, b);
  }

  // Structural equality of two REGION-side expressions modulo further
  // forward substitution (env on the left side).
  bool match_region_value(const Expr& v, const Expr& r, Binder& b) {
    if (fir::expr_equal(v, r)) return true;
    if (v.kind == ExprKind::VarRef) {
      auto it = b.env.find(v.name);
      if (it != b.env.end()) return match_region_value(*it->second, r, b);
      return false;
    }
    if (v.kind != r.kind || v.args.size() != r.args.size()) return false;
    if (v.kind == ExprKind::Binary && v.bin_op != r.bin_op) return false;
    if (v.kind == ExprKind::Unary && v.un_op != r.un_op) return false;
    if ((v.kind == ExprKind::ArrayRef || v.kind == ExprKind::Intrinsic) &&
        v.name != r.name)
      return false;
    for (size_t i = 0; i < v.args.size(); ++i) {
      const Expr* a = v.args[i].get();
      const Expr* c = r.args[i].get();
      if (!a || !c) {
        if (a != c) return false;
        continue;
      }
      if (!match_region_value(*a, *c, b)) return false;
    }
    return true;
  }

  // A template subscript `t` that the inliner shifted by (c - 1): the region
  // holds ((x + c) - 1) with x matching t (or plain x when c == 1).
  bool match_shifted(const Expr& t, const Expr& c_hint, const Expr& r, Binder& b) {
    if (c_hint.is_int_lit(1)) return match_expr(t, r, b);
    if (r.kind == ExprKind::Binary && r.bin_op == fir::BinOp::Sub && r.args[1] &&
        r.args[1]->is_int_lit(1) && r.args[0] &&
        r.args[0]->kind == ExprKind::Binary &&
        r.args[0]->bin_op == fir::BinOp::Add) {
      const Expr& x = *r.args[0]->args[0];
      const Expr& c = *r.args[0]->args[1];
      Binder save = b.snapshot();
      if (match_expr(t, x, b) &&
          (fir::expr_equal(c, c_hint) || match_region_value(c_hint, c, b)))
        return true;
      b = save.snapshot();
    }
    return false;
  }

  bool match_mapped_array(const Expr& t, const Expr& r, Binder& b) {
    const Expr* hint = b.hint_for(t.name);
    if (!hint) return false;
    if (hint->kind == ExprKind::VarRef) {
      // Whole-array rename.
      if (r.kind == ExprKind::VarRef)
        return t.kind == ExprKind::VarRef && r.name == hint->name;
      if (r.kind != ExprKind::ArrayRef || r.name != hint->name) return false;
      if (t.kind == ExprKind::VarRef) return false;  // shape change: reject
      if (t.args.size() != r.args.size()) return false;
      for (size_t i = 0; i < t.args.size(); ++i)
        if (!match_optional(t.args[i].get(), r.args[i].get(), b)) return false;
      return true;
    }
    if (hint->kind != ExprKind::ArrayRef) return false;
    // Element-base mapping.
    if (r.kind != ExprKind::ArrayRef || r.name != hint->name) return false;
    if (r.args.size() != hint->args.size()) return false;
    size_t k = (t.kind == ExprKind::ArrayRef) ? t.args.size() : 0;
    for (size_t d = 0; d < hint->args.size(); ++d) {
      const Expr& c = *hint->args[d];
      const Expr& rd = *r.args[d];
      if (d < k) {
        const Expr& td = *t.args[d];
        if (td.kind == ExprKind::Section) {
          if (c.is_int_lit(1)) {
            if (!match_expr(td, rd, b)) return false;
          } else {
            if (rd.kind != ExprKind::Section) return false;
            if (!td.args[0] || !rd.args[0] || !td.args[1] || !rd.args[1])
              return false;
            if (!match_shifted(*td.args[0], c, *rd.args[0], b)) return false;
            if (!match_shifted(*td.args[1], c, *rd.args[1], b)) return false;
          }
        } else if (!match_shifted(td, c, rd, b)) {
          return false;
        }
      } else if (t.kind == ExprKind::VarRef) {
        // Whole-formal over an element base: sections for leading dims were
        // generated by the inliner; accept sections or the trailing fixed
        // subscripts.
        if (rd.kind == ExprKind::Section) continue;  // bounds derived from dims
        if (!fir::expr_equal(c, rd) && !match_region_value(c, rd, b))
          return false;
      } else {
        // Trailing fixed subscript from the hint.
        if (!fir::expr_equal(c, rd) && !match_region_value(c, rd, b))
          return false;
      }
    }
    return true;
  }

  // ---- statements ----------------------------------------------------------

  bool match_stmt(const Stmt& t, const Stmt& r, Binder& b) {
    if (t.kind != r.kind) return false;
    switch (t.kind) {
      case StmtKind::Assign:
      case StmtKind::TupleAssign: {
        if (t.lhs.size() != r.lhs.size()) return false;
        for (size_t i = 0; i < t.lhs.size(); ++i)
          if (!match_optional(t.lhs[i].get(), r.lhs[i].get(), b)) return false;
        if (!match_optional(t.rhs.get(), r.rhs.get(), b)) return false;
        // Record the assigned value for forward-substitution tolerance.
        for (size_t i = 0; i < t.lhs.size(); ++i) {
          if (t.lhs[i] && t.lhs[i]->kind == ExprKind::VarRef && r.rhs &&
              !b.is_scalar_formal(t.lhs[i]->name))
            b.env[t.lhs[i]->name] = r.rhs->clone();
        }
        return true;
      }
      case StmtKind::Do: {
        b.dovar_map[t.do_var] = r.do_var;
        if (!match_optional(t.do_lo.get(), r.do_lo.get(), b)) return false;
        if (!match_optional(t.do_hi.get(), r.do_hi.get(), b)) return false;
        if (!match_optional(t.do_step.get(), r.do_step.get(), b)) return false;
        return match_block(t.body, r.body, b);
      }
      case StmtKind::If:
        if (!match_optional(t.cond.get(), r.cond.get(), b)) return false;
        return match_block(t.body, r.body, b) &&
               match_block(t.else_body, r.else_body, b);
      case StmtKind::Return:
      case StmtKind::Continue:
        return true;
      case StmtKind::Call:
      case StmtKind::Write:
      case StmtKind::Stop:
      case StmtKind::TaggedRegion:
        return false;  // annotations cannot contain these
    }
    return false;
  }

  // Order-insensitive block matching (statement-reordering tolerance).
  bool match_block(const std::vector<StmtPtr>& ts, const std::vector<StmtPtr>& rs,
                   Binder& b) {
    std::vector<bool> used(rs.size(), false);
    size_t next = 0;
    for (const auto& t : ts) {
      if (!t) continue;
      if (t->kind == StmtKind::Return || t->kind == StmtKind::Continue)
        continue;  // dropped by parsing/inlining; nothing to match
      bool found = false;
      if (opts_.tolerate_reordering) {
        for (size_t j = 0; j < rs.size(); ++j) {
          if (used[j] || !rs[j]) continue;
          Binder save = b.snapshot();
          if (match_stmt(*t, *rs[j], b)) {
            used[j] = true;
            found = true;
            break;
          }
          b = save.snapshot();
        }
      } else {
        if (next < rs.size() && rs[next]) {
          Binder save = b.snapshot();
          if (match_stmt(*t, *rs[next], b)) {
            used[next] = true;
            found = true;
            ++next;
          } else {
            b = save.snapshot();
          }
        }
      }
      if (!found) return false;
    }
    for (size_t j = 0; j < rs.size(); ++j)
      if (rs[j] && !used[j]) return false;  // extra region statement
    return true;
  }
};

class Reverser {
 public:
  Reverser(fir::Program& prog, const annot::AnnotationRegistry& registry,
           DiagnosticEngine& diags, ReverseInlineReport& report,
           const ReverseInlineOptions& opts)
      : prog_(prog), registry_(registry), diags_(diags), report_(report),
        opts_(opts) {}

  void run() {
    for (auto& u : prog_.units) {
      process(u->body);
      cleanup_imported_decls(*u);
    }
  }

 private:
  fir::Program& prog_;
  const annot::AnnotationRegistry& registry_;
  DiagnosticEngine& diags_;
  ReverseInlineReport& report_;
  const ReverseInlineOptions& opts_;

  void process(std::vector<StmtPtr>& body) {
    for (auto& sp : body) {
      if (!sp) continue;
      Stmt& s = *sp;
      if (s.kind == StmtKind::TaggedRegion) {
        sp = reverse_region(s);
        continue;
      }
      process(s.body);
      process(s.else_body);
    }
  }

  StmtPtr reverse_region(Stmt& region) {
    const fir::ProgramUnit* tmpl = registry_.find(region.name);
    std::vector<ExprPtr> args;
    bool matched = false;
    if (tmpl) {
      Matcher m(*tmpl, region, opts_);
      Binder b;
      if (m.run(b)) {
        matched = true;
        for (size_t i = 0; i < tmpl->params.size(); ++i) {
          std::string formal = fold_upper(tmpl->params[i]);
          auto it = b.scalar_bindings.find(formal);
          const Expr* hint = i < region.arg_hints.size()
                                 ? region.arg_hints[i].get()
                                 : nullptr;
          if (it != b.scalar_bindings.end() && !b.is_array_formal(formal)) {
            // Prefer the hint spelling when it is equivalent (keeps the
            // original source text); otherwise use the extracted binding.
            if (hint && fir::expr_equal(*hint, *it->second))
              args.push_back(hint->clone());
            else
              args.push_back(it->second->clone());
          } else if (hint) {
            args.push_back(hint->clone());
          } else {
            matched = false;
            break;
          }
        }
      }
    }
    if (!matched) {
      ++report_.regions_failed;
      if (!opts_.fallback_to_hints) {
        diags_.error(region.loc, "reverse inlining: pattern match failed for " +
                                     region.name);
        // Leave the region in place; the caller sees the failure count.
        return region.clone();
      }
      // The recorded hints are the original call's actual arguments; they
      // remain a sound reversal even when extraction fails.
      diags_.warning(region.loc, "reverse inlining: pattern match failed for " +
                                     region.name + "; using recorded call-site");
      args.clear();
      for (const auto& h : region.arg_hints) args.push_back(h->clone());
    } else {
      ++report_.regions_reversed;
    }
    auto call = fir::make_call(region.name, std::move(args));
    call->loc = region.loc;
    return call;
  }

  void cleanup_imported_decls(fir::ProgramUnit& u) {
    std::set<std::string> mentioned;
    fir::walk_stmts(u.body, [&](const Stmt& s) {
      fir::walk_exprs(s, [&](const Expr& x) {
        if (x.kind == ExprKind::VarRef || x.kind == ExprKind::ArrayRef)
          mentioned.insert(x.name);
      });
      if (s.kind == StmtKind::Do) {
        mentioned.insert(s.do_var);
        // OMP clauses keep privatized callee globals alive: the runtime
        // resolves PRIVATE(XY) through this unit's declaration even though
        // XY is only touched inside called subroutines.
        for (const auto& p : s.omp.privates) mentioned.insert(p);
        for (const auto& r : s.omp.reductions) mentioned.insert(r.var);
      }
      return true;
    });
    std::set<std::string> removed;
    for (auto it = u.decls.begin(); it != u.decls.end();) {
      if (it->annot_imported && !mentioned.count(it->name)) {
        removed.insert(it->name);
        it = u.decls.erase(it);
      } else {
        ++it;
      }
    }
    for (auto& blk : u.commons) {
      for (auto vit = blk.vars.begin(); vit != blk.vars.end();) {
        if (removed.count(fold_upper(*vit)))
          vit = blk.vars.erase(vit);
        else
          ++vit;
      }
    }
    for (auto it = u.commons.begin(); it != u.commons.end();) {
      if (it->vars.empty())
        it = u.commons.erase(it);
      else
        ++it;
    }
  }
};

}  // namespace

ReverseInlineReport reverse_inline(fir::Program& prog,
                                   const annot::AnnotationRegistry& registry,
                                   DiagnosticEngine& diags,
                                   const ReverseInlineOptions& opts) {
  ReverseInlineReport report;
  Reverser rv(prog, registry, diags, report, opts);
  rv.run();
  return report;
}

}  // namespace ap::xform
