#include "xform/subst.h"

namespace ap::xform {

namespace {

void visit_slots(fir::Stmt& s, const std::function<void(fir::ExprPtr&)>& fn) {
  for (auto& l : s.lhs)
    if (l) fn(l);
  if (s.rhs) fn(s.rhs);
  if (s.do_lo) fn(s.do_lo);
  if (s.do_hi) fn(s.do_hi);
  if (s.do_step) fn(s.do_step);
  if (s.cond) fn(s.cond);
  for (auto& a : s.args)
    if (a) fn(a);
  for (auto& a : s.arg_hints)
    if (a) fn(a);
}

}  // namespace

void for_each_expr_slot(std::vector<fir::StmtPtr>& body,
                        const std::function<void(fir::ExprPtr&)>& fn) {
  for (auto& sp : body) {
    if (!sp) continue;
    visit_slots(*sp, fn);
    for_each_expr_slot(sp->body, fn);
    for_each_expr_slot(sp->else_body, fn);
  }
}

fir::ExprPtr rewrite_expr_tree(fir::ExprPtr e, const ExprRewriter& fn) {
  if (!e) return e;
  for (auto& a : e->args) a = rewrite_expr_tree(std::move(a), fn);
  fir::ExprPtr repl = fn(*e);
  return repl ? std::move(repl) : std::move(e);
}

void rewrite_exprs(std::vector<fir::StmtPtr>& body, const ExprRewriter& fn) {
  for_each_expr_slot(body, [&](fir::ExprPtr& slot) {
    slot = rewrite_expr_tree(std::move(slot), fn);
  });
}

void substitute_vars(std::vector<fir::StmtPtr>& body,
                     const std::map<std::string, const fir::Expr*>& map) {
  rewrite_exprs(body, [&](const fir::Expr& e) -> fir::ExprPtr {
    if (e.kind != fir::ExprKind::VarRef) return nullptr;
    auto it = map.find(e.name);
    if (it == map.end()) return nullptr;
    return it->second->clone();
  });
}

void rename_identifiers(std::vector<fir::StmtPtr>& body,
                        const std::map<std::string, std::string>& renames) {
  rewrite_exprs(body, [&](const fir::Expr& e) -> fir::ExprPtr {
    if (e.kind != fir::ExprKind::VarRef && e.kind != fir::ExprKind::ArrayRef)
      return nullptr;
    auto it = renames.find(e.name);
    if (it == renames.end()) return nullptr;
    fir::ExprPtr repl = e.clone();
    repl->name = it->second;
    return repl;
  });
  // DO variables are plain strings, not expression nodes.
  fir::walk_stmts(body, [&](fir::Stmt& s) {
    if (s.kind == fir::StmtKind::Do) {
      auto it = renames.find(s.do_var);
      if (it != renames.end()) s.do_var = it->second;
    }
    return true;
  });
}

std::set<std::string> written_names(const std::vector<fir::StmtPtr>& body) {
  std::set<std::string> out;
  fir::walk_stmts(body, [&](const fir::Stmt& s) {
    switch (s.kind) {
      case fir::StmtKind::Assign:
      case fir::StmtKind::TupleAssign:
        for (const auto& l : s.lhs)
          if (l) out.insert(l->name);
        break;
      case fir::StmtKind::Do:
        out.insert(s.do_var);
        break;
      case fir::StmtKind::Call:
        // Without interprocedural information, arguments and globals may be
        // written; record argument bases conservatively.
        for (const auto& a : s.args) {
          if (!a) continue;
          if (a->kind == fir::ExprKind::VarRef || a->kind == fir::ExprKind::ArrayRef)
            out.insert(a->name);
        }
        break;
      default:
        break;
    }
    return true;
  });
  return out;
}

std::set<std::string> referenced_names(const fir::Expr& e) {
  std::set<std::string> out;
  fir::walk_expr_tree(e, [&](const fir::Expr& x) {
    if (x.kind == fir::ExprKind::VarRef || x.kind == fir::ExprKind::ArrayRef)
      out.insert(x.name);
  });
  return out;
}

}  // namespace ap::xform
