// Annotation-based inlining (paper §III.C.1).
//
// A CALL whose callee has a registered annotation is replaced by the
// annotation body — not the implementation — bracketed by a TaggedRegion
// node (the AST form of the paper's "pair of special tags", Fig. 18):
//
//   CALL MATMLT(PP(1,1,KS-1), PHIT(1,1), TM1(1,1), 4, 4, 4)
//     ==>
//   C$ANNOT BEGIN MATMLT 7
//     DO JN_A1 = 1, 4
//       ...PP(JL_A0, JM_A2, KS-1)...    ! formals mapped, shape preserved
//   C$ANNOT END MATMLT 7
//
// Differences from conventional inlining that realize the paper's claims:
//   * works for external-library and recursive callees (no source needed);
//   * never linearizes: the annotation's `dimension M1[L,M]` declarations
//     reshape the actual with its declared multi-dimensional form, so no
//     parallelism-destroying flattening happens (§III.C.1, Fig. 16); when
//     leading extents cannot be verified the site is skipped, not degraded;
//   * `unknown`/`unique` stay first-class expression nodes: `unknown` is a
//     read of its operands producing an opaque value (semantically the
//     paper's fresh-global-array encoding), `unique` an injective function
//     handled by the dependence tester (DESIGN.md §5). The inlined code is
//     analyzed, never executed — reverse inlining restores the real calls
//     before the program runs.
//
// Declarations for callee globals referenced by the annotation are imported
// into the caller (marked annot_imported) so shapes are known to analysis;
// the reverse inliner removes them again.
#pragma once

#include <string>
#include <vector>

#include "annot/parser.h"
#include "fir/ast.h"
#include "support/diagnostics.h"

namespace ap::xform {

struct AnnotInlineOptions {
  bool require_in_loop = true;
};

struct AnnotInlineReport {
  int sites_inlined = 0;
  int sites_skipped = 0;
  std::vector<std::string> notes;
};

AnnotInlineReport inline_annotations(fir::Program& prog,
                                     const annot::AnnotationRegistry& registry,
                                     const AnnotInlineOptions& opts,
                                     DiagnosticEngine& diags);

}  // namespace ap::xform
