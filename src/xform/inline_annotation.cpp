#include "xform/inline_annotation.h"

#include <map>
#include <set>

#include "sema/symbols.h"
#include "support/text.h"
#include "xform/subst.h"

namespace ap::xform {

namespace {

using fir::Expr;
using fir::ExprKind;
using fir::ExprPtr;
using fir::Stmt;
using fir::StmtKind;
using fir::StmtPtr;

ExprPtr extent_expr(const fir::Dim& d) {
  if (!d.hi) return nullptr;
  if (!d.lo) return d.hi->clone();
  return fir::make_binary(
      fir::BinOp::Add,
      fir::make_binary(fir::BinOp::Sub, d.hi->clone(), d.lo->clone()),
      fir::make_int(1));
}

struct ArrayMap {
  std::string actual_array;
  std::vector<ExprPtr> actual_subs;  // empty => whole-array rename
};

class AnnotInliner {
 public:
  AnnotInliner(fir::Program& prog, const annot::AnnotationRegistry& registry,
               const AnnotInlineOptions& opts, AnnotInlineReport& report)
      : prog_(prog), registry_(registry), opts_(opts), report_(report) {
    DiagnosticEngine scratch;
    sema_ = std::make_unique<sema::SemaContext>(prog, scratch);
  }

  void run() {
    for (auto& u : prog_.units) {
      if (u->external_library) continue;
      // Per-caller-unit counters: a caller's post-inline text (tag ids,
      // renamed DO variables) must be a pure function of its own
      // dependence closure so pass-boundary snapshots of one unit stay
      // valid when other units change.
      tag_counter_ = 0;
      rename_counter_ = 0;
      process_body(u->body, *u, 0);
    }
  }

 private:
  fir::Program& prog_;
  const annot::AnnotationRegistry& registry_;
  const AnnotInlineOptions& opts_;
  AnnotInlineReport& report_;
  std::unique_ptr<sema::SemaContext> sema_;
  // Per-invocation counters: fresh names must be deterministic for a given
  // input program, independent of prior inliner runs in the process.
  int64_t tag_counter_ = 0;
  int64_t rename_counter_ = 0;

  void note(std::string msg) { report_.notes.push_back(std::move(msg)); }

  void process_body(std::vector<StmtPtr>& body, fir::ProgramUnit& caller,
                    int loop_depth) {
    for (size_t i = 0; i < body.size(); ++i) {
      Stmt& s = *body[i];
      switch (s.kind) {
        case StmtKind::Do:
          process_body(s.body, caller, loop_depth + 1);
          break;
        case StmtKind::If:
          process_body(s.body, caller, loop_depth);
          process_body(s.else_body, caller, loop_depth);
          break;
        case StmtKind::Call: {
          if (opts_.require_in_loop && loop_depth == 0) break;
          const fir::ProgramUnit* tmpl = registry_.find(s.name);
          if (!tmpl) break;
          StmtPtr region = instantiate(*tmpl, s, caller);
          if (region) {
            body[i] = std::move(region);
            ++report_.sites_inlined;
          } else {
            ++report_.sites_skipped;
          }
          break;
        }
        default:
          break;
      }
    }
  }

  // Verify that the annotated formal shape can overlay the actual without
  // stride mismatch: leading extents (all but the last formal dim) must
  // match between the instantiated annotation dims and the actual's decl.
  bool shape_compatible(const fir::VarDecl& fdecl,
                        const std::map<std::string, const Expr*>& subst,
                        const fir::VarDecl& adecl,
                        const fir::ProgramUnit& caller) {
    size_t k = fdecl.dims.size();
    size_t n = adecl.dims.size();
    if (k > n) return false;
    // Strides must match for dims 1..k-1; when the view does not consume
    // the full rank (k < n), the k-th extent must also fit inside the
    // actual's k-th extent or the view would wrap across dimensions.
    size_t checked = (k < n) ? k : (k > 0 ? k - 1 : 0);
    for (size_t d = 0; d < checked; ++d) {
      ExprPtr fe = extent_expr(fdecl.dims[d]);
      ExprPtr ae = extent_expr(adecl.dims[d]);
      if (!fe || !ae) return false;
      // Instantiate formal-scalar names in the annotation extent.
      std::vector<StmtPtr> tmp;
      tmp.push_back(fir::make_assign(fir::make_var("APAR_X"), std::move(fe)));
      substitute_vars(tmp, subst);
      const Expr& inst = *tmp[0]->rhs;
      if (fir::expr_equal(inst, *ae)) continue;
      DiagnosticEngine scratch;
      sema::SemaContext fresh(prog_, scratch);
      auto va = fresh.fold_int(caller.name, inst);
      auto vb = fresh.fold_int(caller.name, *ae);
      bool last_dim = (d + 1 == k) && (k < n);
      if (!(va && vb && (last_dim ? *va <= *vb : *va == *vb))) return false;
    }
    return true;
  }

  StmtPtr instantiate(const fir::ProgramUnit& tmpl, const Stmt& call,
                      fir::ProgramUnit& caller) {
    if (call.args.size() != tmpl.params.size()) {
      note("skip " + call.name + ": argument count mismatch with annotation");
      return nullptr;
    }
    std::vector<StmtPtr> body = fir::clone_stmts(tmpl.body);

    // Annotations must not write scalar formals (documented restriction).
    std::set<std::string> written = written_names(body);
    std::map<std::string, const Expr*> scalar_subst;
    std::map<std::string, ArrayMap> array_maps;

    // Pass 1: bind scalar formals first — array-formal shape declarations
    // (dimension M1[L,M]) reference them. A written scalar formal is fine
    // when the actual is an lvalue: Fortran passes by reference, so the
    // substituted write targets the actual directly and reverse matching
    // re-derives the argument from the write target. Expression actuals
    // have no caller-visible effect to summarize, so such sites are skipped.
    for (size_t i = 0; i < tmpl.params.size(); ++i) {
      std::string formal = fold_upper(tmpl.params[i]);
      const fir::VarDecl* fdecl = tmpl.find_decl(formal);
      if (fdecl && !fdecl->dims.empty()) continue;
      const Expr* actual = call.args[i].get();
      if (written.count(formal) && actual->kind != ExprKind::VarRef &&
          actual->kind != ExprKind::ArrayRef) {
        note("skip " + call.name + ": annotation writes scalar formal " +
             formal + " bound to a non-lvalue actual");
        return nullptr;
      }
      scalar_subst[formal] = actual;
    }
    // Pass 2: array formals.
    for (size_t i = 0; i < tmpl.params.size(); ++i) {
      std::string formal = fold_upper(tmpl.params[i]);
      const Expr* actual = call.args[i].get();
      const fir::VarDecl* fdecl = tmpl.find_decl(formal);
      bool formal_is_array = fdecl && !fdecl->dims.empty();
      if (!formal_is_array) continue;
      // Array formal: actual must be a whole array or an element base.
      if (actual->kind == ExprKind::VarRef) {
        const fir::VarDecl* adecl = caller.find_decl(actual->name);
        if (!adecl || adecl->dims.empty() ||
            !shape_compatible(*fdecl, scalar_subst, *adecl, caller)) {
          note("skip " + call.name + ": shape of " + formal +
               " incompatible with actual " + actual->name);
          return nullptr;
        }
        array_maps[formal] = ArrayMap{actual->name, {}};
      } else if (actual->kind == ExprKind::ArrayRef) {
        const fir::VarDecl* adecl = caller.find_decl(actual->name);
        if (!adecl || adecl->dims.empty() ||
            !shape_compatible(*fdecl, scalar_subst, *adecl, caller)) {
          note("skip " + call.name + ": shape of " + formal +
               " incompatible with actual element of " + actual->name);
          return nullptr;
        }
        ArrayMap m;
        m.actual_array = actual->name;
        for (const auto& c : actual->args) m.actual_subs.push_back(c->clone());
        array_maps[formal] = std::move(m);
      } else {
        note("skip " + call.name + ": unsupported actual for array formal " +
             formal);
        return nullptr;
      }
    }

    // Freshen annotation loop variables (region-local names).
    std::map<std::string, std::string> renames;
    fir::walk_stmts(body, [&](Stmt& s) {
      if (s.kind == StmtKind::Do && !renames.count(s.do_var) &&
          !tmpl.is_param(s.do_var))
        renames[s.do_var] = s.do_var + "_A" + std::to_string(rename_counter_++);
      return true;
    });
    rename_identifiers(body, renames);
    for (const auto& [from, to] : renames) {
      if (!caller.find_decl(to)) {
        fir::VarDecl d;
        d.name = to;
        d.type = fir::Type::Integer;
        d.annot_imported = true;
        caller.decls.push_back(std::move(d));
      }
    }

    // Substitute scalar formals, then map array formals (bottom-up rewrite:
    // subscripts already substituted when the ArrayRef is visited).
    substitute_vars(body, scalar_subst);
    rewrite_exprs(body, [&](const Expr& e) -> ExprPtr {
      if (e.kind != ExprKind::ArrayRef && e.kind != ExprKind::VarRef)
        return nullptr;
      auto it = array_maps.find(e.name);
      if (it == array_maps.end()) return nullptr;
      const ArrayMap& m = it->second;
      if (e.kind == ExprKind::VarRef) {
        if (m.actual_subs.empty()) {
          ExprPtr r = e.clone();
          r->name = m.actual_array;
          return r;
        }
        // Whole-formal reference over an element base: the annotated region
        // F(1:d1, 1:d2) mapped onto the actual => per-dim sections.
        const fir::VarDecl* fdecl = tmpl.find_decl(e.name);
        std::vector<ExprPtr> subs;
        for (size_t d = 0; d < m.actual_subs.size(); ++d) {
          if (fdecl && d < fdecl->dims.size()) {
            ExprPtr hi = extent_expr(fdecl->dims[d]);
            if (!hi) return nullptr;
            // Instantiate formals inside the extent.
            std::vector<StmtPtr> tmp;
            tmp.push_back(fir::make_assign(fir::make_var("APAR_X"), std::move(hi)));
            substitute_vars(tmp, scalar_subst);
            hi = tmp[0]->rhs->clone();
            ExprPtr lo = m.actual_subs[d]->clone();
            ExprPtr hi_shifted;
            if (m.actual_subs[d]->is_int_lit(1)) {
              hi_shifted = std::move(hi);  // 1 + ext - 1 == ext
            } else {
              hi_shifted = fir::make_binary(
                  fir::BinOp::Sub,
                  fir::make_binary(fir::BinOp::Add, m.actual_subs[d]->clone(),
                                   std::move(hi)),
                  fir::make_int(1));
            }
            subs.push_back(
                fir::make_section(std::move(lo), std::move(hi_shifted)));
          } else {
            subs.push_back(m.actual_subs[d]->clone());
          }
        }
        return fir::make_array_ref(m.actual_array, std::move(subs));
      }
      // Element reference F(i1..ik).
      std::vector<ExprPtr> subs;
      if (m.actual_subs.empty()) {
        ExprPtr r = e.clone();
        r->name = m.actual_array;
        return r;
      }
      size_t k = e.args.size();
      for (size_t d = 0; d < m.actual_subs.size(); ++d) {
        if (d < k) {
          // i_d + c_d - 1; fold the ubiquitous c_d == 1 case for readability.
          if (m.actual_subs[d]->is_int_lit(1)) {
            subs.push_back(e.args[d]->clone());
          } else if (e.args[d]->kind == ExprKind::Section) {
            // Shift both section bounds.
            const Expr& sec = *e.args[d];
            auto shift = [&](const ExprPtr& b) -> ExprPtr {
              if (!b) return nullptr;
              return fir::make_binary(
                  fir::BinOp::Sub,
                  fir::make_binary(fir::BinOp::Add, b->clone(),
                                   m.actual_subs[d]->clone()),
                  fir::make_int(1));
            };
            subs.push_back(fir::make_section(shift(sec.args[0]),
                                             shift(sec.args[1]),
                                             sec.args[2] ? sec.args[2]->clone()
                                                         : nullptr));
          } else {
            subs.push_back(fir::make_binary(
                fir::BinOp::Sub,
                fir::make_binary(fir::BinOp::Add, e.args[d]->clone(),
                                 m.actual_subs[d]->clone()),
                fir::make_int(1)));
          }
        } else {
          subs.push_back(m.actual_subs[d]->clone());
        }
      }
      return fir::make_array_ref(m.actual_array, std::move(subs));
    });

    import_global_decls(body, tmpl, call.name, caller);

    std::vector<ExprPtr> hints;
    for (const auto& a : call.args) hints.push_back(a->clone());
    auto region = fir::make_tagged_region(call.name, tag_counter_++,
                                          std::move(body), std::move(hints));
    region->loc = call.loc;
    note("annotation-inlined " + call.name + " into " + caller.name);
    return region;
  }

  // Make shapes of callee globals visible to the caller's analysis.
  void import_global_decls(const std::vector<StmtPtr>& body,
                           const fir::ProgramUnit& tmpl,
                           const std::string& callee_name,
                           fir::ProgramUnit& caller) {
    const fir::ProgramUnit* callee = prog_.find_unit(callee_name);
    std::set<std::string> mentioned;
    fir::walk_stmts(body, [&](const Stmt& s) {
      fir::walk_exprs(s, [&](const Expr& x) {
        if (x.kind == ExprKind::VarRef || x.kind == ExprKind::ArrayRef)
          mentioned.insert(x.name);
      });
      return true;
    });
    for (const auto& name : mentioned) {
      if (caller.find_decl(name)) continue;
      const fir::VarDecl* d = nullptr;
      const fir::ProgramUnit* source = nullptr;
      if (callee && (d = callee->find_decl(name))) source = callee;
      if (!d && (d = tmpl.find_decl(name))) source = &tmpl;
      // Only names the callee or the annotation declares need importing
      // (shapes for arrays, explicit types). Everything else — e.g. the
      // caller's own implicitly-typed scalars appearing through argument
      // substitution — resolves by the implicit rules and must not acquire
      // a declaration, or the reversed program would differ from the input.
      if (!d) continue;
      fir::VarDecl nd = d->clone();
      nd.annot_imported = true;
      caller.decls.push_back(std::move(nd));
      // Preserve COMMON membership so the storage is shared.
      if (source == callee && callee) {
        for (const auto& blk : callee->commons) {
          for (const auto& v : blk.vars) {
            if (!ieq(v, name)) continue;
            fir::CommonBlock* mine = nullptr;
            for (auto& cb : caller.commons)
              if (ieq(cb.name, blk.name)) mine = &cb;
            if (!mine) {
              caller.commons.push_back(fir::CommonBlock{blk.name, {}});
              mine = &caller.commons.back();
            }
            bool have = false;
            for (const auto& mv : mine->vars)
              if (ieq(mv, name)) have = true;
            if (!have) mine->vars.push_back(name);
          }
        }
      }
    }
  }
};

}  // namespace

AnnotInlineReport inline_annotations(fir::Program& prog,
                                     const annot::AnnotationRegistry& registry,
                                     const AnnotInlineOptions& opts,
                                     DiagnosticEngine& diags) {
  (void)diags;
  AnnotInlineReport report;
  AnnotInliner inl(prog, registry, opts, report);
  inl.run();
  return report;
}

}  // namespace ap::xform
