#include "xform/inline_conventional.h"

#include <map>
#include <optional>
#include <set>

#include "sema/symbols.h"
#include "support/text.h"
#include "xform/subst.h"

namespace ap::xform {

namespace {

using fir::Expr;
using fir::ExprKind;
using fir::ExprPtr;
using fir::Stmt;
using fir::StmtKind;
using fir::StmtPtr;

// Extent expression of one declared dimension: (hi - lo + 1), simplified for
// the common lo==1 case. Returns nullptr for assumed size.
ExprPtr extent_expr(const fir::Dim& d) {
  if (!d.hi) return nullptr;
  if (!d.lo) return d.hi->clone();
  return fir::make_binary(
      fir::BinOp::Add,
      fir::make_binary(fir::BinOp::Sub, d.hi->clone(), d.lo->clone()),
      fir::make_int(1));
}

// Structural-or-constant equality of two extent expressions evaluated in
// their respective units.
bool extents_match(const fir::Dim& a, const sema::SemaContext& sema,
                   const std::string& unit_a, const fir::Dim& b,
                   const std::string& unit_b) {
  ExprPtr ea = extent_expr(a);
  ExprPtr eb = extent_expr(b);
  if (!ea || !eb) return false;
  if (fir::expr_equal(*ea, *eb)) return true;
  auto va = sema.fold_int(unit_a, *ea);
  auto vb = sema.fold_int(unit_b, *eb);
  return va && vb && *va == *vb;
}

// One bound formal array: how references to it are rewritten.
struct ArrayBinding {
  enum class Kind {
    Rename,     // F(i...) -> A(i...)
    ElementMap, // F(i1..ik) -> A(i1+c1-1, ..., ik+ck-1, c_{k+1}.., cn)
    Linearized, // F(subs) -> A(flat_index + base_offset)
  };
  Kind kind = Kind::Rename;
  std::string actual_array;
  std::vector<ExprPtr> actual_subs;   // ElementMap / Linearized base element
  std::vector<ExprPtr> formal_extents;  // Linearized: formal dim extents
  std::vector<ExprPtr> actual_extents;  // Linearized: caller dim extents
};

// Linear index of subs within extents (column-major, 1-based):
//   e1 + (e2-1)*E1 + (e3-1)*E1*E2 + ...
ExprPtr linear_index(const std::vector<ExprPtr>& subs,
                     const std::vector<ExprPtr>& extents) {
  ExprPtr idx = subs[0]->clone();
  ExprPtr stride;
  for (size_t d = 1; d < subs.size(); ++d) {
    ExprPtr ed = extents[d - 1] ? extents[d - 1]->clone() : nullptr;
    if (!ed) return nullptr;  // assumed-size before last dim: cannot flatten
    stride = stride ? fir::make_binary(fir::BinOp::Mul, std::move(stride),
                                       std::move(ed))
                    : std::move(ed);
    ExprPtr term = fir::make_binary(
        fir::BinOp::Mul,
        fir::make_binary(fir::BinOp::Sub, subs[d]->clone(), fir::make_int(1)),
        stride->clone());
    idx = fir::make_binary(fir::BinOp::Add, std::move(idx), std::move(term));
  }
  return idx;
}

class Inliner {
 public:
  Inliner(fir::Program& prog, const ConvInlineOptions& opts,
          DiagnosticEngine& diags, ConvInlineReport& report)
      : prog_(prog), opts_(opts), diags_(diags), report_(report) {}

  bool run_pass() {
    sema_ = std::make_unique<sema::SemaContext>(prog_, scratch_diags_);
    bool changed = false;
    for (auto& u : prog_.units) {
      if (u->external_library) continue;
      changed |= process_body(u->body, *u, /*loop_depth=*/0);
    }
    return changed;
  }

 private:
  fir::Program& prog_;
  const ConvInlineOptions& opts_;
  DiagnosticEngine& diags_;
  ConvInlineReport& report_;
  std::unique_ptr<sema::SemaContext> sema_;
  DiagnosticEngine scratch_diags_;
  // Fresh-name counters live in the report so multi-pass runs stay unique
  // while distinct inline_conventional() invocations are deterministic.

  void note(const std::string& msg) { report_.notes.push_back(msg); }

  std::string fresh_name_(const std::string& base,
                          const fir::ProgramUnit& caller) {
    return base + "_IL" +
           std::to_string(report_.fresh_counters[caller.name]++);
  }

  bool process_body(std::vector<StmtPtr>& body, fir::ProgramUnit& caller,
                    int loop_depth) {
    bool changed = false;
    for (size_t i = 0; i < body.size(); ++i) {
      Stmt& s = *body[i];
      switch (s.kind) {
        case StmtKind::Do:
          changed |= process_body(s.body, caller, loop_depth + 1);
          break;
        case StmtKind::If:
          changed |= process_body(s.body, caller, loop_depth);
          changed |= process_body(s.else_body, caller, loop_depth);
          break;
        case StmtKind::TaggedRegion:
          break;  // never inline inside annotation regions
        case StmtKind::Call: {
          if (opts_.require_in_loop && loop_depth == 0) break;
          std::vector<StmtPtr> replacement;
          if (try_inline(s, caller, replacement)) {
            body.erase(body.begin() + static_cast<long>(i));
            for (size_t k = 0; k < replacement.size(); ++k)
              body.insert(body.begin() + static_cast<long>(i + k),
                          std::move(replacement[k]));
            ++report_.sites_inlined;
            changed = true;
            --i;  // re-examine from the spliced code? No: skip past it.
            i += replacement.size();
          }
          break;
        }
        default:
          break;
      }
    }
    return changed;
  }

  bool eligible(const fir::ProgramUnit& callee, const Stmt& call) {
    const sema::UnitInfo* info = sema_->unit_info(callee.name);
    if (!info) return false;
    if (callee.external_library) {
      note("skip " + callee.name + ": external library (no source)");
      return false;
    }
    if (sema_->is_recursive(callee.name)) {
      note("skip " + callee.name + ": recursive");
      return false;
    }
    if (info->has_io || info->has_stop) {
      note("skip " + callee.name + ": contains I/O or STOP");
      return false;
    }
    if (info->stmt_count > opts_.max_stmts) {
      note("skip " + callee.name + ": too large (" +
           std::to_string(info->stmt_count) + " stmts)");
      return false;
    }
    if (static_cast<int>(info->callees.size()) > opts_.max_callee_calls) {
      note("skip " + callee.name + ": makes further calls");
      return false;
    }
    // Mid-body RETURN makes splicing unsound; only trailing RETURNs allowed.
    bool mid_return = false;
    int returns = 0;
    fir::walk_stmts(callee.body, [&](const Stmt& st) {
      if (st.kind == StmtKind::Return) ++returns;
      return true;
    });
    if (returns > 1 ||
        (returns == 1 && (callee.body.empty() ||
                          callee.body.back()->kind != StmtKind::Return)))
      mid_return = true;
    if (mid_return) {
      note("skip " + callee.name + ": non-trailing RETURN");
      return false;
    }
    // A formal used as a DO variable complicates substitution; skip.
    for (const auto& p : callee.params) {
      bool is_dovar = false;
      fir::walk_stmts(callee.body, [&](const Stmt& st) {
        if (st.kind == StmtKind::Do && ieq(st.do_var, p)) is_dovar = true;
        return true;
      });
      if (is_dovar) {
        note("skip " + callee.name + ": formal used as DO variable");
        return false;
      }
    }
    (void)call;
    return true;
  }

  bool try_inline(Stmt& call, fir::ProgramUnit& caller,
                  std::vector<StmtPtr>& out) {
    fir::ProgramUnit* callee = prog_.find_unit(call.name);
    if (!callee || callee == &caller) return false;
    if (!eligible(*callee, call)) {
      ++report_.sites_skipped;
      return false;
    }
    if (call.args.size() != callee->params.size()) return false;

    // Clone the actual arguments: linearize_caller_array rewrites the whole
    // caller body, including this CALL's own argument expressions, so any
    // pointer into call.args would dangle.
    std::vector<ExprPtr> actuals;
    actuals.reserve(call.args.size());
    for (const auto& a : call.args) {
      if (!a) return false;
      actuals.push_back(a->clone());
    }

    std::set<std::string> callee_written = written_names(callee->body);

    // Classify formals and build bindings.
    std::map<std::string, const Expr*> scalar_subst;   // formal -> actual expr
    std::map<std::string, std::string> renames;        // locals + renamed arrays
    std::map<std::string, ArrayBinding> array_bind;    // formal array -> binding
    std::vector<StmtPtr> pre, post;

    for (size_t i = 0; i < callee->params.size(); ++i) {
      std::string formal = fold_upper(callee->params[i]);
      const Expr* actual = actuals[i].get();
      const sema::SymbolInfo* fsym = sema_->symbol(callee->name, formal);
      bool formal_is_array = fsym && fsym->is_array();

      if (!formal_is_array) {
        if (!callee_written.count(formal)) {
          scalar_subst[formal] = actual;
        } else {
          // Copy-in / copy-out temporary.
          std::string tmp = fresh_name_(formal, caller);
          pre.push_back(fir::make_assign(fir::make_var(tmp), actual->clone()));
          if (actual->kind == ExprKind::VarRef ||
              actual->kind == ExprKind::ArrayRef)
            post.push_back(fir::make_assign(actual->clone(), fir::make_var(tmp)));
          renames[formal] = tmp;
          fir::VarDecl d;
          d.name = tmp;
          d.type = fsym ? fsym->type : fir::Type::Real;
          caller.decls.push_back(std::move(d));
        }
        continue;
      }

      // Array formal.
      const fir::VarDecl* fdecl = callee->find_decl(formal);
      if (!fdecl) return false;
      if (actual->kind == ExprKind::VarRef) {
        const fir::VarDecl* adecl = caller.find_decl(actual->name);
        if (!adecl || adecl->dims.empty()) {
          note("skip site: actual " + actual->name + " not an array");
          ++report_.sites_skipped;
          return false;
        }
        if (adecl->dims.size() == fdecl->dims.size() &&
            leading_extents_match(*fdecl, *callee, *adecl, caller)) {
          ArrayBinding b;
          b.kind = ArrayBinding::Kind::Rename;
          b.actual_array = actual->name;
          array_bind[formal] = std::move(b);
        } else {
          if (!make_linearized_binding(formal, *fdecl, *callee, *actual,
                                       *adecl, caller, array_bind))
            return false;
        }
      } else if (actual->kind == ExprKind::ArrayRef) {
        const fir::VarDecl* adecl = caller.find_decl(actual->name);
        if (!adecl || adecl->dims.empty()) return false;
        size_t k = fdecl->dims.size();
        size_t n = adecl->dims.size();
        bool can_map = k <= n && leading_extents_match(*fdecl, *callee, *adecl, caller);
        if (can_map && k < n) {
          // The formal's last extent must be known and fit within the
          // actual's corresponding extent, or the view would wrap across
          // the actual's higher dimensions.
          ExprPtr fe = extent_expr(fdecl->dims[k - 1]);
          ExprPtr ae = extent_expr(adecl->dims[k - 1]);
          std::optional<int64_t> va, vb;
          if (fe) va = sema_->fold_int(callee->name, *fe);
          if (ae) vb = sema_->fold_int(caller.name, *ae);
          can_map = va && vb && *va <= *vb;
        }
        if (can_map) {
          ArrayBinding b;
          b.kind = ArrayBinding::Kind::ElementMap;
          b.actual_array = actual->name;
          for (const auto& c : actual->args) b.actual_subs.push_back(c->clone());
          array_bind[formal] = std::move(b);
        } else {
          if (!make_linearized_binding(formal, *fdecl, *callee, *actual,
                                       *adecl, caller, array_bind))
            return false;
        }
      } else {
        note("skip site: unsupported actual for array formal " + formal);
        ++report_.sites_skipped;
        return false;
      }
    }

    // Clone body, drop trailing RETURN.
    std::vector<StmtPtr> body = fir::clone_stmts(callee->body);
    while (!body.empty() && body.back()->kind == StmtKind::Return)
      body.pop_back();

    // Freshen callee locals (not params, not commons).
    std::set<std::string> common_vars;
    for (const auto& blk : callee->commons)
      for (const auto& v : blk.vars) common_vars.insert(fold_upper(v));
    for (const auto& d : callee->decls) {
      if (callee->is_param(d.name) || common_vars.count(d.name) ||
          d.is_param_const)
        continue;
      std::string nn = fresh_name_(d.name, caller);
      renames[d.name] = nn;
      fir::VarDecl nd = d.clone();
      nd.name = nn;
      caller.decls.push_back(std::move(nd));
    }
    // Undeclared callee locals (implicit scalars) also need freshening.
    {
      std::set<std::string> mentioned;
      fir::walk_stmts(body, [&](const Stmt& st) {
        fir::walk_exprs(st, [&](const Expr& x) {
          if (x.kind == ExprKind::VarRef || x.kind == ExprKind::ArrayRef)
            mentioned.insert(x.name);
        });
        if (st.kind == StmtKind::Do) mentioned.insert(st.do_var);
        return true;
      });
      for (const auto& m : mentioned) {
        if (renames.count(m) || common_vars.count(m) || callee->is_param(m) ||
            callee->find_decl(m))
          continue;
        std::string nn = fresh_name_(m, caller);
        renames[m] = nn;
        fir::VarDecl nd;
        nd.name = nn;
        nd.type = (m[0] >= 'I' && m[0] <= 'N') ? fir::Type::Integer
                                               : fir::Type::Real;
        caller.decls.push_back(std::move(nd));
      }
    }
    // Import PARAMETER constants used by the callee.
    for (const auto& d : callee->decls) {
      if (d.is_param_const && !caller.find_decl(d.name))
        caller.decls.push_back(d.clone());
    }
    // Import callee COMMON blocks the caller does not have.
    for (const auto& blk : callee->commons) {
      bool have = false;
      for (const auto& cblk : caller.commons)
        if (ieq(cblk.name, blk.name)) have = true;
      if (have) continue;
      caller.commons.push_back(blk);
      for (const auto& v : blk.vars) {
        if (!caller.find_decl(v)) {
          const fir::VarDecl* d = callee->find_decl(v);
          if (d) caller.decls.push_back(d->clone());
        }
      }
    }

    rename_identifiers(body, renames);
    substitute_vars(body, scalar_subst);
    apply_array_bindings(body, array_bind);

    out = std::move(pre);
    for (auto& s : body) out.push_back(std::move(s));
    for (auto& s : post) out.push_back(std::move(s));
    note("inlined " + callee->name + " into " + caller.name);
    return true;
  }

  bool leading_extents_match(const fir::VarDecl& fdecl,
                             const fir::ProgramUnit& callee,
                             const fir::VarDecl& adecl,
                             const fir::ProgramUnit& caller) {
    size_t k = fdecl.dims.size();
    // Strides must agree for dims 1..k-1; the k-th dimension of the formal
    // must not extend past the actual (checked when both fold).
    for (size_t d = 0; d + 1 < k; ++d) {
      if (!extents_match(fdecl.dims[d], *sema_, callee.name, adecl.dims[d],
                         caller.name))
        return false;
    }
    return true;
  }

  bool make_linearized_binding(const std::string& formal,
                               const fir::VarDecl& fdecl,
                               const fir::ProgramUnit& callee, const Expr& actual,
                               const fir::VarDecl& adecl,
                               fir::ProgramUnit& caller,
                               std::map<std::string, ArrayBinding>& out) {
    (void)callee;
    ArrayBinding b;
    b.kind = ArrayBinding::Kind::Linearized;
    b.actual_array = actual.name;
    if (actual.kind == ExprKind::ArrayRef)
      for (const auto& c : actual.args) b.actual_subs.push_back(c->clone());
    for (const auto& d : fdecl.dims) b.formal_extents.push_back(extent_expr(d));
    for (const auto& d : adecl.dims) b.actual_extents.push_back(extent_expr(d));
    // Flatten every reference to the actual array in the whole caller and
    // degrade its declaration to assumed-size 1-D ("no explicit shape").
    linearize_caller_array(caller, actual.name, b.actual_extents);
    out[formal] = std::move(b);
    return true;
  }

  // Rewrite all caller references A(e1..en) -> A(flat) and change the decl.
  // `array` is taken by value: the rewrite below may destroy the expression
  // node the caller's name was borrowed from.
  void linearize_caller_array(fir::ProgramUnit& caller, const std::string array,
                              const std::vector<ExprPtr>& extents) {
    fir::VarDecl* decl = caller.find_decl(array);
    if (!decl || decl->dims.size() <= 1) return;  // already linear
    size_t rank = decl->dims.size();
    rewrite_exprs(caller.body, [&](const Expr& e) -> ExprPtr {
      if (e.kind != ExprKind::ArrayRef || e.name != array) return nullptr;
      if (e.args.size() != rank) return nullptr;
      std::vector<ExprPtr> subs;
      for (const auto& a : e.args) {
        if (!a || a->kind == ExprKind::Section) return nullptr;
        subs.push_back(a->clone());
      }
      ExprPtr flat = linear_index(subs, extents);
      if (!flat) return nullptr;
      std::vector<ExprPtr> one;
      one.push_back(std::move(flat));
      return fir::make_array_ref(array, std::move(one));
    });
    // Degrade the declaration to one dimension. Dummy arrays keep assumed
    // size (their storage is the caller's); COMMON/local arrays own storage,
    // so fold the product of extents into the flat size when possible —
    // either way the multi-dimensional shape information is gone, which is
    // the point of the pathology (paper §II.A.2).
    int64_t product = 1;
    bool all_const = true;
    for (const auto& e : extents) {
      std::optional<int64_t> v;
      if (e) v = sema_->fold_int(caller.name, *e);
      if (!v) {
        all_const = false;
        break;
      }
      product *= *v;
    }
    decl->dims.clear();
    fir::Dim flat;
    if (all_const) flat.hi = fir::make_int(product);
    decl->dims.push_back(std::move(flat));
  }

  void apply_array_bindings(std::vector<StmtPtr>& body,
                            const std::map<std::string, ArrayBinding>& binds) {
    if (binds.empty()) return;
    rewrite_exprs(body, [&](const Expr& e) -> ExprPtr {
      if (e.kind != ExprKind::ArrayRef && e.kind != ExprKind::VarRef)
        return nullptr;
      auto it = binds.find(e.name);
      if (it == binds.end()) return nullptr;
      const ArrayBinding& b = it->second;
      switch (b.kind) {
        case ArrayBinding::Kind::Rename: {
          ExprPtr r = e.clone();
          r->name = b.actual_array;
          return r;
        }
        case ArrayBinding::Kind::ElementMap: {
          if (e.kind != ExprKind::ArrayRef) return nullptr;  // whole-ref: keep
          // F(i1..ik) -> A(i1 + c1 - 1, ..., ik + ck - 1, c_{k+1}, ..., cn)
          std::vector<ExprPtr> subs;
          size_t k = e.args.size();
          for (size_t d = 0; d < b.actual_subs.size(); ++d) {
            if (d < k) {
              if (b.actual_subs[d]->is_int_lit(1)) {
                subs.push_back(e.args[d]->clone());  // i + 1 - 1 == i
              } else {
                subs.push_back(fir::make_binary(
                    fir::BinOp::Sub,
                    fir::make_binary(fir::BinOp::Add, e.args[d]->clone(),
                                     b.actual_subs[d]->clone()),
                    fir::make_int(1)));
              }
            } else {
              subs.push_back(b.actual_subs[d]->clone());
            }
          }
          return fir::make_array_ref(b.actual_array, std::move(subs));
        }
        case ArrayBinding::Kind::Linearized: {
          if (e.kind != ExprKind::ArrayRef) return nullptr;
          std::vector<ExprPtr> fsubs;
          for (const auto& a : e.args) {
            if (!a || a->kind == ExprKind::Section) return nullptr;
            fsubs.push_back(a->clone());
          }
          ExprPtr flat = linear_index(fsubs, b.formal_extents);
          if (!flat) {
            // 1-D assumed-size formal: the subscript itself is the offset.
            flat = fsubs[0]->clone();
          }
          // Base offset of the actual element within the caller array.
          if (!b.actual_subs.empty()) {
            std::vector<ExprPtr> asubs;
            for (const auto& c : b.actual_subs) asubs.push_back(c->clone());
            ExprPtr base = linear_index(asubs, b.actual_extents);
            if (base) {
              flat = fir::make_binary(
                  fir::BinOp::Sub,
                  fir::make_binary(fir::BinOp::Add, std::move(flat),
                                   std::move(base)),
                  fir::make_int(1));
            }
          }
          std::vector<ExprPtr> one;
          one.push_back(std::move(flat));
          return fir::make_array_ref(b.actual_array, std::move(one));
        }
      }
      return nullptr;
    });
  }
};

}  // namespace

int eliminate_dead_units(fir::Program& prog) {
  std::set<std::string> reachable;
  std::vector<const fir::ProgramUnit*> work;
  for (const auto& u : prog.units)
    if (u->kind == fir::UnitKind::Program) {
      reachable.insert(u->name);
      work.push_back(u.get());
    }
  while (!work.empty()) {
    const fir::ProgramUnit* u = work.back();
    work.pop_back();
    fir::walk_stmts(u->body, [&](const fir::Stmt& s) {
      if (s.kind == fir::StmtKind::Call && !reachable.count(s.name)) {
        reachable.insert(s.name);
        if (const fir::ProgramUnit* c = prog.find_unit(s.name))
          work.push_back(c);
      }
      // Restored calls inside tagged regions count too.
      return true;
    });
  }
  int removed = 0;
  for (auto it = prog.units.begin(); it != prog.units.end();) {
    if ((*it)->kind == fir::UnitKind::Subroutine && !reachable.count((*it)->name)) {
      it = prog.units.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

ConvInlineReport inline_conventional(fir::Program& prog,
                                     const ConvInlineOptions& opts,
                                     DiagnosticEngine& diags) {
  ConvInlineReport report;
  for (int pass = 0; pass < opts.max_passes; ++pass) {
    Inliner inl(prog, opts, diags, report);
    if (!inl.run_pass()) break;
  }
  if (opts.eliminate_dead_units) report.units_removed = eliminate_dead_units(prog);
  return report;
}

}  // namespace ap::xform
