// Normalization passes the Polaris substitute applies before dependence
// analysis (and which the reverse inliner therefore tolerates, paper
// §III.C.3):
//
//   * forward propagation — block-local forward substitution of scalar
//     assignments (covering constant propagation as a special case). This
//     is what turns `ID = IDBEGS(ISS)+1+K; ... A(ID)` into an analyzable
//     subscript `A(IDBEGS(ISS)+1+K)` — and, after conventional inlining of
//     PCINIT-style callees, what creates the subscripted-subscript
//     pathology `T(IX(7)+I)` of paper §II.A.1.
//
//   * induction-variable substitution — rewrites reads of the canonical
//     `S = S + c` pattern into closed forms over the loop indices so the
//     incremented scalar degenerates into a recognizable reduction. Scope
//     (documented restriction, a subset of Polaris' full algorithm): one
//     unconditional increment with a literal step, uses located after the
//     increment in the same innermost body, enclosing trip counts invariant
//     in the outer loop.
#pragma once

#include <vector>

#include "fir/ast.h"

namespace ap::xform {

// Forward-propagate scalar assignments within `body` (recursing into nested
// statements with sound invalidation on redefinition, array writes, calls,
// branches and back-edges). Mutates the AST.
void forward_propagate(std::vector<fir::StmtPtr>& body);

struct InductionOptions {
  // When false, increments located inside TaggedRegions are left alone so
  // the reverse-inlining matcher sees the statement set it expects.
  bool transform_inside_tagged_regions = false;
};

// Apply induction-variable substitution to every DO loop in `body`
// (outermost first). Inserts base-snapshot assignments before transformed
// loops; returns the number of substituted induction variables.
int substitute_inductions(std::vector<fir::StmtPtr>& body,
                          const InductionOptions& opts = {});

// The full pre-analysis normalization of one unit: forward propagation,
// induction substitution, then forward propagation again (substitution
// exposes more propagation opportunities). Units are independent, so the
// pipeline's normalize pass fans this out one call per unit.
void normalize_unit(fir::ProgramUnit& unit);

}  // namespace ap::xform
