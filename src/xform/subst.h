// Expression rewriting utilities shared by the inliners and normalization
// passes: visiting every expression slot of a statement tree, substituting
// variables by expressions, and renaming identifiers.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "fir/ast.h"

namespace ap::xform {

// Visit every ExprPtr slot (lhs, rhs, bounds, cond, args, hints) of every
// statement, recursing into nested statements. The callback may replace the
// slot by assigning through the reference.
void for_each_expr_slot(std::vector<fir::StmtPtr>& body,
                        const std::function<void(fir::ExprPtr&)>& fn);

// Bottom-up expression rewriter: children are transformed first, then `fn`
// may return a replacement for the node (or nullptr to keep it).
using ExprRewriter = std::function<fir::ExprPtr(const fir::Expr&)>;
void rewrite_exprs(std::vector<fir::StmtPtr>& body, const ExprRewriter& fn);
fir::ExprPtr rewrite_expr_tree(fir::ExprPtr e, const ExprRewriter& fn);

// Substitute scalar variable reads/writes: every VarRef whose name is in
// `map` becomes a clone of the mapped expression. ArrayRef base names are
// NOT touched (use rename_identifiers or a custom rewriter for arrays).
void substitute_vars(std::vector<fir::StmtPtr>& body,
                     const std::map<std::string, const fir::Expr*>& map);

// Rename identifiers wholesale: VarRef and ArrayRef base names, DO
// variables. Used by the inliners to freshen callee locals.
void rename_identifiers(std::vector<fir::StmtPtr>& body,
                        const std::map<std::string, std::string>& renames);

// All names written anywhere in `body` (scalar assignments, array
// assignment bases, tuple targets, DO variables; CALL arguments are
// conservatively counted as written).
std::set<std::string> written_names(const std::vector<fir::StmtPtr>& body);

// All identifier names referenced in an expression (variables and array
// bases).
std::set<std::string> referenced_names(const fir::Expr& e);

}  // namespace ap::xform
