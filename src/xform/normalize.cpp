#include "xform/normalize.h"

#include <map>
#include <optional>
#include <set>

#include "xform/subst.h"

namespace ap::xform {

// ---------------------------------------------------------------------------
// Forward propagation
// ---------------------------------------------------------------------------

namespace {

struct EnvEntry {
  fir::ExprPtr value;
  std::set<std::string> deps;  // names (vars + array bases) the value reads
};

using Env = std::map<std::string, EnvEntry>;

Env clone_env(const Env& env) {
  Env out;
  for (const auto& [k, v] : env)
    out[k] = EnvEntry{v.value->clone(), v.deps};
  return out;
}

constexpr size_t kMaxSubstNodes = 16;

size_t expr_size(const fir::Expr& e) {
  size_t n = 1;
  for (const auto& a : e.args)
    if (a) n += expr_size(*a);
  return n;
}

// Substitutable values: pure arithmetic over variables, array elements and
// intrinsics. unknown/unique/sections/strings are never propagated.
bool substitutable(const fir::Expr& e) {
  switch (e.kind) {
    case fir::ExprKind::Unknown:
    case fir::ExprKind::Unique:
    case fir::ExprKind::Section:
    case fir::ExprKind::StrLit:
      return false;
    default:
      break;
  }
  for (const auto& a : e.args)
    if (a && !substitutable(*a)) return false;
  return true;
}

void invalidate(Env& env, const std::string& written) {
  env.erase(written);
  for (auto it = env.begin(); it != env.end();) {
    if (it->second.deps.count(written))
      it = env.erase(it);
    else
      ++it;
  }
}

void invalidate_all(Env& env, const std::set<std::string>& written) {
  for (const auto& w : written) invalidate(env, w);
}

fir::ExprPtr apply_env(fir::ExprPtr e, const Env& env) {
  return rewrite_expr_tree(std::move(e), [&](const fir::Expr& x) -> fir::ExprPtr {
    if (x.kind != fir::ExprKind::VarRef) return nullptr;
    auto it = env.find(x.name);
    if (it == env.end()) return nullptr;
    return it->second.value->clone();
  });
}

class ForwardPropagator {
 public:
  void block(std::vector<fir::StmtPtr>& body, Env& env) {
    for (auto& sp : body) {
      if (!sp) continue;
      stmt(*sp, env);
    }
  }

 private:
  void rewrite_slot(fir::ExprPtr& slot, const Env& env) {
    if (slot) slot = apply_env(std::move(slot), env);
  }

  void stmt(fir::Stmt& s, Env& env) {
    using fir::StmtKind;
    switch (s.kind) {
      case StmtKind::Assign:
      case StmtKind::TupleAssign: {
        rewrite_slot(s.rhs, env);
        // Subscripts of write targets are reads.
        for (auto& l : s.lhs) {
          if (!l) continue;
          for (auto& sub : l->args) {
            if (sub) sub = apply_env(std::move(sub), env);
          }
        }
        // Record/invalidate targets.
        for (const auto& l : s.lhs) {
          if (!l) continue;
          if (l->kind == fir::ExprKind::VarRef) {
            invalidate(env, l->name);
            if (s.kind == StmtKind::Assign && s.rhs && substitutable(*s.rhs) &&
                expr_size(*s.rhs) <= kMaxSubstNodes) {
              auto deps = referenced_names(*s.rhs);
              if (!deps.count(l->name))
                env[l->name] = EnvEntry{s.rhs->clone(), std::move(deps)};
            }
          } else {
            invalidate(env, l->name);  // array write
          }
        }
        return;
      }
      case StmtKind::Do: {
        rewrite_slot(s.do_lo, env);
        rewrite_slot(s.do_hi, env);
        rewrite_slot(s.do_step, env);
        auto written = written_names(s.body);
        written.insert(s.do_var);
        invalidate_all(env, written);
        Env inner = clone_env(env);  // entries surviving the back-edge
        block(s.body, inner);
        // After the loop nothing new can be trusted (zero-trip possibility);
        // env already excludes everything the body writes.
        return;
      }
      case StmtKind::If: {
        rewrite_slot(s.cond, env);
        Env t = clone_env(env), e = clone_env(env);
        block(s.body, t);
        block(s.else_body, e);
        auto written = written_names(s.body);
        auto ew = written_names(s.else_body);
        written.insert(ew.begin(), ew.end());
        invalidate_all(env, written);
        return;
      }
      case StmtKind::Call: {
        for (auto& a : s.args) rewrite_slot(a, env);
        env.clear();  // callee may write anything (commons, arguments)
        return;
      }
      case StmtKind::Write:
        for (auto& a : s.args) rewrite_slot(a, env);
        return;
      case StmtKind::TaggedRegion: {
        block(s.body, env);
        return;
      }
      case StmtKind::Stop:
      case StmtKind::Return:
      case StmtKind::Continue:
        return;
    }
  }
};

}  // namespace

void forward_propagate(std::vector<fir::StmtPtr>& body) {
  Env env;
  ForwardPropagator fp;
  fp.block(body, env);
}

// ---------------------------------------------------------------------------
// Induction substitution
// ---------------------------------------------------------------------------

namespace {

struct IncrementSite {
  fir::Stmt* stmt = nullptr;          // the S = S + c assignment
  int64_t step = 0;
  std::vector<fir::Stmt*> loop_path;  // loops strictly inside L enclosing it
  std::vector<fir::Stmt*> container;  // innermost body (for position checks)
  size_t index_in_container = 0;
  bool conditional = false;
  bool in_tagged_region = false;
};

// Matches S = S + <int literal> (or S - literal / literal + S).
std::optional<std::pair<std::string, int64_t>> match_increment(const fir::Stmt& s) {
  if (s.kind != fir::StmtKind::Assign || s.lhs.size() != 1 || !s.lhs[0] || !s.rhs)
    return std::nullopt;
  const fir::Expr& l = *s.lhs[0];
  if (l.kind != fir::ExprKind::VarRef) return std::nullopt;
  const fir::Expr& r = *s.rhs;
  if (r.kind != fir::ExprKind::Binary) return std::nullopt;
  if (r.bin_op != fir::BinOp::Add && r.bin_op != fir::BinOp::Sub)
    return std::nullopt;
  const fir::Expr* a = r.args[0].get();
  const fir::Expr* b = r.args[1].get();
  auto lit = [](const fir::Expr* e) -> std::optional<int64_t> {
    if (!e) return std::nullopt;
    if (e->kind == fir::ExprKind::IntLit) return e->int_val;
    if (e->kind == fir::ExprKind::Unary && e->un_op == fir::UnOp::Neg &&
        e->args[0] && e->args[0]->kind == fir::ExprKind::IntLit)
      return -e->args[0]->int_val;
    return std::nullopt;
  };
  if (a && a->kind == fir::ExprKind::VarRef && a->name == l.name) {
    if (auto c = lit(b))
      return std::make_pair(l.name, r.bin_op == fir::BinOp::Sub ? -*c : *c);
  }
  if (r.bin_op == fir::BinOp::Add && b && b->kind == fir::ExprKind::VarRef &&
      b->name == l.name) {
    if (auto c = lit(a)) return std::make_pair(l.name, *c);
  }
  return std::nullopt;
}

// Count of writes to `name` in a body (any kind).
int count_writes(const std::vector<fir::StmtPtr>& body, const std::string& name) {
  int n = 0;
  fir::walk_stmts(body, [&](const fir::Stmt& s) {
    if (s.kind == fir::StmtKind::Assign || s.kind == fir::StmtKind::TupleAssign) {
      for (const auto& l : s.lhs)
        if (l && l->name == name) ++n;
    }
    if (s.kind == fir::StmtKind::Do && s.do_var == name) ++n;
    return true;
  });
  return n;
}

fir::ExprPtr trip_count_expr(const fir::Stmt& loop) {
  // (hi - lo + 1), step 1 assumed (checked by caller).
  return fir::make_binary(
      fir::BinOp::Add,
      fir::make_binary(fir::BinOp::Sub, loop.do_hi->clone(), loop.do_lo->clone()),
      fir::make_int(1));
}

class InductionPass {
 public:
  explicit InductionPass(const InductionOptions& opts) : opts_(opts) {}

  int run(std::vector<fir::StmtPtr>& body) {
    // Process loops outermost-first: find DO statements at any depth and
    // attempt the transformation on each.
    int total = 0;
    for (size_t i = 0; i < body.size(); ++i) {
      if (!body[i]) continue;
      fir::Stmt& s = *body[i];
      if (s.kind == fir::StmtKind::Do) {
        total += transform_loop(body, i);
      }
      total += run(s.body);
      total += run(s.else_body);
    }
    return total;
  }

 private:
  InductionOptions opts_;

  // Locate the unique unconditional `S = S + c` increment sites in `loop`.
  void find_increments(fir::Stmt& loop, std::vector<IncrementSite>& out) {
    struct Walk {
      std::vector<fir::Stmt*> loop_path;
      bool conditional = false;
      bool tagged = false;
      std::vector<IncrementSite>* out;
      void body(std::vector<fir::StmtPtr>& stmts) {
        for (size_t i = 0; i < stmts.size(); ++i) {
          fir::Stmt& s = *stmts[i];
          if (auto m = match_increment(s)) {
            IncrementSite site;
            site.stmt = &s;
            site.step = m->second;
            site.loop_path = loop_path;
            site.index_in_container = i;
            site.conditional = conditional;
            site.in_tagged_region = tagged;
            out->push_back(site);
          }
          if (s.kind == fir::StmtKind::Do) {
            loop_path.push_back(&s);
            body(s.body);
            loop_path.pop_back();
          } else if (s.kind == fir::StmtKind::If) {
            bool saved = conditional;
            conditional = true;
            body(s.body);
            body(s.else_body);
            conditional = saved;
          } else if (s.kind == fir::StmtKind::TaggedRegion) {
            bool saved = tagged;
            tagged = true;
            body(s.body);
            tagged = saved;
          }
        }
      }
    };
    Walk w;
    w.out = &out;
    w.body(loop.body);
  }

  int transform_loop(std::vector<fir::StmtPtr>& container, size_t loop_index) {
    fir::Stmt& loop = *container[loop_index];
    std::vector<IncrementSite> sites;
    find_increments(loop, sites);

    int transformed = 0;
    for (const auto& site : sites) {
      const std::string name = site.stmt->lhs[0]->name;
      if (site.conditional) continue;
      if (site.in_tagged_region && !opts_.transform_inside_tagged_regions)
        continue;
      if (name == loop.do_var) continue;
      if (count_writes(loop.body, name) != 1) continue;
      // Nothing to substitute when the variable is never read outside its
      // own increment: the bare increment is already a recognizable
      // reduction (this also makes the pass idempotent).
      {
        int reads = 0;
        std::function<void(const std::vector<fir::StmtPtr>&)> count_reads =
            [&](const std::vector<fir::StmtPtr>& stmts) {
              for (const auto& sp : stmts) {
                if (!sp) continue;
                if (sp.get() == site.stmt) continue;
                fir::walk_exprs(*sp, [&](const fir::Expr& x) {
                  if (x.kind == fir::ExprKind::VarRef && x.name == name)
                    ++reads;
                });
                count_reads(sp->body);
                count_reads(sp->else_body);
              }
            };
        count_reads(loop.body);
        if (reads == 0) continue;
      }

      // Enclosing loops (path) need step 1 and bounds that do not depend on
      // anything written in `loop` (including the indices themselves).
      auto written = written_names(loop.body);
      written.insert(loop.do_var);
      bool ok = true;
      for (const fir::Stmt* pl : site.loop_path) {
        if (pl->do_step || !pl->do_lo || !pl->do_hi) {
          ok = false;
          break;
        }
        for (const fir::Expr* b : {pl->do_lo.get(), pl->do_hi.get()}) {
          for (const auto& n : referenced_names(*b))
            if (written.count(n)) ok = false;
        }
      }
      if (loop.do_step || !loop.do_lo || !loop.do_hi) ok = false;
      if (!ok) continue;

      // Closed form for the number of completed increments at the point
      // just after the increment in iteration (I, j1..jk):
      //   (I - lo_I) * T1*...*Tk + Σ_m (j_m - lo_m) * Π_{n>m} T_n + 1
      auto count = completed_increments(loop, site);
      if (!count) continue;

      // Snapshot the pre-loop value.
      std::string base = "APAR_" + name + "_BASE";
      auto snapshot = fir::make_assign(fir::make_var(base), fir::make_var(name));

      // Replacement for reads after the increment: base + step*count.
      fir::ExprPtr repl = fir::make_binary(
          fir::BinOp::Add, fir::make_var(base),
          fir::make_binary(fir::BinOp::Mul, fir::make_int(site.step),
                           (*count)->clone()));

      // Rewrite reads of `name` everywhere in the loop except the increment
      // statement itself. The restriction "uses after the increment in the
      // same innermost body" is enforced here: any read elsewhere aborts.
      if (!rewrite_uses(loop, site, name, *repl)) continue;

      container.insert(container.begin() + static_cast<long>(loop_index),
                       std::move(snapshot));
      ++transformed;
      // Indices shifted; the loop reference is still valid (vector of
      // unique_ptr moves pointers, not pointees), but restart to stay safe.
      break;
    }
    // The increment statement itself stays: with its reads rewritten away
    // from every other site, the scalar now matches the reduction pattern
    // and the parallelizer emits REDUCTION(+:S), preserving the final value.
    return transformed;
  }

  // Build the completed-increments expression; nullopt if a trip count is
  // not expressible.
  std::optional<fir::ExprPtr> completed_increments(const fir::Stmt& loop,
                                                   const IncrementSite& site) {
    // Product of trip counts of the loops inside the path.
    auto product_from = [&](size_t from) -> fir::ExprPtr {
      fir::ExprPtr p;
      for (size_t n = from; n < site.loop_path.size(); ++n) {
        fir::ExprPtr t = trip_count_expr(*site.loop_path[n]);
        p = p ? fir::make_binary(fir::BinOp::Mul, std::move(p), std::move(t))
              : std::move(t);
      }
      return p ? std::move(p) : fir::make_int(1);
    };

    // (I - lo_I) * T1..Tk
    fir::ExprPtr total = fir::make_binary(
        fir::BinOp::Mul,
        fir::make_binary(fir::BinOp::Sub, fir::make_var(loop.do_var),
                         loop.do_lo->clone()),
        product_from(0));
    for (size_t m = 0; m < site.loop_path.size(); ++m) {
      const fir::Stmt* lm = site.loop_path[m];
      fir::ExprPtr term = fir::make_binary(
          fir::BinOp::Mul,
          fir::make_binary(fir::BinOp::Sub, fir::make_var(lm->do_var),
                           lm->do_lo->clone()),
          product_from(m + 1));
      total = fir::make_binary(fir::BinOp::Add, std::move(total), std::move(term));
    }
    total = fir::make_binary(fir::BinOp::Add, std::move(total), fir::make_int(1));
    return total;
  }

  // Rewrite all reads of `name` in the loop body to `repl`, verifying they
  // sit after the increment in the same innermost body. Returns false (and
  // leaves the AST untouched) when a read violates the restriction.
  bool rewrite_uses(fir::Stmt& loop, const IncrementSite& site,
                    const std::string& name, const fir::Expr& repl) {
    if (!validate_uses(loop.body, site, name, 0)) return false;
    replace_reads(loop.body, site, name, repl);
    return true;
  }

  // Depth: position along site.loop_path. Returns true if all reads are
  // after the increment within the innermost body.
  bool validate_uses(std::vector<fir::StmtPtr>& stmts, const IncrementSite& site,
                     const std::string& name, size_t depth) {
    bool innermost = depth == site.loop_path.size();
    bool seen = false;
    for (auto& sp : stmts) {
      fir::Stmt& s = *sp;
      if (&s == site.stmt) {
        seen = true;
        continue;
      }
      bool reads = false;
      fir::walk_exprs(s, [&](const fir::Expr& x) {
        if (x.kind == fir::ExprKind::VarRef && x.name == name) reads = true;
      });
      if (s.kind == fir::StmtKind::Do && depth < site.loop_path.size() &&
          &s == site.loop_path[depth]) {
        if (reads) return false;  // bounds read the induction variable
        if (!validate_uses(s.body, site, name, depth + 1)) return false;
        continue;
      }
      if (reads) {
        if (!innermost || !seen) return false;
        continue;
      }
      // Reads nested deeper (inside IFs after the increment) are fine when
      // we are in the innermost body and past the increment; otherwise any
      // nested read fails.
      bool nested_reads = false;
      fir::walk_stmts(s.body, [&](const fir::Stmt& n) {
        fir::walk_exprs(n, [&](const fir::Expr& x) {
          if (x.kind == fir::ExprKind::VarRef && x.name == name)
            nested_reads = true;
        });
        return true;
      });
      fir::walk_stmts(s.else_body, [&](const fir::Stmt& n) {
        fir::walk_exprs(n, [&](const fir::Expr& x) {
          if (x.kind == fir::ExprKind::VarRef && x.name == name)
            nested_reads = true;
        });
        return true;
      });
      if (nested_reads && (!innermost || !seen)) return false;
    }
    return true;
  }

  void replace_reads(std::vector<fir::StmtPtr>& stmts, const IncrementSite& site,
                     const std::string& name, const fir::Expr& repl) {
    for (auto& sp : stmts) {
      fir::Stmt& s = *sp;
      if (&s == site.stmt) continue;  // keep the increment intact
      auto rewrite = [&](fir::ExprPtr& slot) {
        slot = rewrite_expr_tree(std::move(slot),
                                 [&](const fir::Expr& x) -> fir::ExprPtr {
                                   if (x.kind == fir::ExprKind::VarRef &&
                                       x.name == name)
                                     return repl.clone();
                                   return nullptr;
                                 });
      };
      for (auto& l : s.lhs) {
        if (!l) continue;
        for (auto& sub : l->args) {
          if (sub) rewrite(sub);
        }
      }
      if (s.rhs) rewrite(s.rhs);
      if (s.cond) rewrite(s.cond);
      if (s.do_lo) rewrite(s.do_lo);
      if (s.do_hi) rewrite(s.do_hi);
      if (s.do_step) rewrite(s.do_step);
      for (auto& a : s.args)
        if (a) rewrite(a);
      replace_reads(s.body, site, name, repl);
      replace_reads(s.else_body, site, name, repl);
    }
  }
};

}  // namespace

int substitute_inductions(std::vector<fir::StmtPtr>& body,
                          const InductionOptions& opts) {
  InductionPass pass(opts);
  return pass.run(body);
}

void normalize_unit(fir::ProgramUnit& unit) {
  forward_propagate(unit.body);
  substitute_inductions(unit.body);
  // Induction substitution may expose more propagation opportunities.
  forward_propagate(unit.body);
}

}  // namespace ap::xform
