// Reverse inlining (paper §III.C.3).
//
// Every TaggedRegion created by annotation-based inlining is pattern-matched
// against its annotation template and replaced by an equivalent CALL of the
// original subroutine, keeping OpenMP directives on surrounding loops
// intact. The matcher re-derives the actual arguments by unification and is
// tolerant of the normalizations Polaris applies between inlining and
// reversal (paper: "reordering of statements, induction variable
// substitution, and constant propagation"):
//
//   * statement reordering — blocks match order-insensitively (greedy
//     search over unmatched region statements);
//   * forward substitution — a template read of a global G matches any
//     region expression equal to the value G was last assigned in already-
//     matched region statements (a local value environment);
//   * constant propagation — a scalar formal may bind to both the original
//     expression and a literal; the non-literal binding wins and the
//     literal occurrence is accepted;
//   * OpenMP directives — metadata on DO nodes, invisible to matching;
//     directives inside the region vanish with it (the real callee is not
//     parallelized), directives on enclosing loops survive (paper Fig. 19).
//
// Scalar formals are extracted by unification; array formals are verified
// against the recorded call-site hints (the mapping from formal subscripts
// to actual subscripts is not invertible in general). Formals that do not
// occur in the template body fall back to the recorded hints. After
// replacement, declarations imported by the annotation inliner that are no
// longer referenced are removed so the output program is the original
// source plus OpenMP directives (Table II: no code growth).
#pragma once

#include <string>
#include <vector>

#include "annot/parser.h"
#include "fir/ast.h"
#include "support/diagnostics.h"

namespace ap::xform {

// Tolerance switches exist for the ablation study (bench_ablation_reverse):
// disabling one shows which normalization would break naive reversal.
struct ReverseInlineOptions {
  bool tolerate_reordering = true;     // order-insensitive block matching
  bool tolerate_forward_subst = true;  // value-environment matching
  bool tolerate_literals = true;       // constant-propagation leniency
  bool fallback_to_hints = true;       // emit recorded call on match failure
};

struct ReverseInlineReport {
  int regions_reversed = 0;
  int regions_failed = 0;
  std::vector<std::string> notes;
};

ReverseInlineReport reverse_inline(fir::Program& prog,
                                   const annot::AnnotationRegistry& registry,
                                   DiagnosticEngine& diags,
                                   const ReverseInlineOptions& opts = {});

}  // namespace ap::xform
