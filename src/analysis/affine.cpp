#include "analysis/affine.h"

namespace ap::analysis {

AffineForm& AffineForm::operator+=(const AffineForm& o) {
  if (!affine || !o.affine) {
    affine = false;
    return *this;
  }
  constant += o.constant;
  for (const auto& [v, c] : o.loop_coeffs) {
    loop_coeffs[v] += c;
    if (loop_coeffs[v] == 0) loop_coeffs.erase(v);
  }
  for (const auto& [v, c] : o.sym_coeffs) {
    sym_coeffs[v] += c;
    if (sym_coeffs[v] == 0) sym_coeffs.erase(v);
  }
  return *this;
}

AffineForm& AffineForm::operator-=(const AffineForm& o) {
  AffineForm neg = o;
  neg.negate();
  return *this += neg;
}

void AffineForm::scale(int64_t k) {
  if (!affine) return;
  constant *= k;
  if (k == 0) {
    loop_coeffs.clear();
    sym_coeffs.clear();
    return;
  }
  for (auto& [v, c] : loop_coeffs) c *= k;
  for (auto& [v, c] : sym_coeffs) c *= k;
}

AffineForm AffineForm::difference(const AffineForm& a, const AffineForm& b) {
  AffineForm out = a;
  out -= b;
  return out;
}

std::string AffineForm::to_string() const {
  if (!affine) return "<non-affine>";
  std::string s = std::to_string(constant);
  for (const auto& [v, c] : loop_coeffs)
    s += " + " + std::to_string(c) + "*" + v;
  for (const auto& [v, c] : sym_coeffs)
    s += " + " + std::to_string(c) + "*{" + v + "}";
  return s;
}

namespace {

AffineForm non_affine() { return AffineForm{}; }

AffineForm constant_form(int64_t v) {
  AffineForm f;
  f.affine = true;
  f.constant = v;
  return f;
}

// True if the form is a single symbol with coefficient 1 and nothing else
// (used to build composite-product symbols).
std::optional<std::string> single_symbol(const AffineForm& f) {
  if (!f.affine || f.constant != 0 || !f.loop_coeffs.empty()) return std::nullopt;
  if (f.sym_coeffs.size() != 1) return std::nullopt;
  const auto& [name, coeff] = *f.sym_coeffs.begin();
  if (coeff != 1) return std::nullopt;
  return name;
}

AffineForm normalize_rec(const fir::Expr& e, const VarClassifier& classify,
                         const OpaqueSymbolizer* symbolize) {
  using fir::ExprKind;
  switch (e.kind) {
    case ExprKind::IntLit:
      return constant_form(e.int_val);
    case ExprKind::VarRef: {
      switch (classify(e.name)) {
        case VarClass::LoopIndex: {
          AffineForm f;
          f.affine = true;
          f.loop_coeffs[e.name] = 1;
          return f;
        }
        case VarClass::Invariant: {
          AffineForm f;
          f.affine = true;
          f.sym_coeffs[e.name] = 1;
          return f;
        }
        case VarClass::Variant:
          return non_affine();
      }
      return non_affine();
    }
    case ExprKind::Unary: {
      AffineForm f = normalize_rec(*e.args[0], classify, symbolize);
      switch (e.un_op) {
        case fir::UnOp::Neg:
          f.negate();
          return f;
        case fir::UnOp::Plus:
          return f;
        case fir::UnOp::Not:
          return non_affine();
      }
      return non_affine();
    }
    case ExprKind::Binary: {
      AffineForm l = normalize_rec(*e.args[0], classify, symbolize);
      AffineForm r = normalize_rec(*e.args[1], classify, symbolize);
      if (!l.affine || !r.affine) return non_affine();
      switch (e.bin_op) {
        case fir::BinOp::Add:
          l += r;
          return l;
        case fir::BinOp::Sub:
          l -= r;
          return l;
        case fir::BinOp::Mul:
          if (r.is_constant()) {
            l.scale(r.constant);
            return l;
          }
          if (l.is_constant()) {
            r.scale(l.constant);
            return r;
          }
          // Distribute a product of a purely-symbolic affine form with a
          // single invariant symbol: (JN - 1) * NB becomes {(JN*NB)} - {NB}
          // with canonical composite symbol names, so identical symbolic
          // offsets cancel between the two sides of a dependence equation.
          // Anything involving a loop variable (e.g. a linearized subscript
          // K * <symbolic extent>) stays non-affine — the dimension-
          // linearization pathology of paper §II.A.2.
          {
            const AffineForm* sym_side = nullptr;
            std::optional<std::string> single;
            if ((single = single_symbol(l)) && r.loop_coeffs.empty())
              sym_side = &r;
            else if ((single = single_symbol(r)) && l.loop_coeffs.empty())
              sym_side = &l;
            if (sym_side && single) {
              AffineForm f;
              f.affine = true;
              for (const auto& [s, c] : sym_side->sym_coeffs) {
                std::string an = s, bn = *single;
                if (bn < an) std::swap(an, bn);  // canonical order
                f.sym_coeffs["(" + an + "*" + bn + ")"] += c;
              }
              if (sym_side->constant != 0)
                f.sym_coeffs[*single] += sym_side->constant;
              for (auto it = f.sym_coeffs.begin(); it != f.sym_coeffs.end();) {
                if (it->second == 0)
                  it = f.sym_coeffs.erase(it);
                else
                  ++it;
              }
              return f;
            }
          }
          return non_affine();
        case fir::BinOp::Div:
          // Exact division by a constant only.
          if (r.is_constant() && r.constant != 0) {
            int64_t d = r.constant;
            if (l.constant % d != 0) return non_affine();
            for (const auto& [v, c] : l.loop_coeffs)
              if (c % d != 0) return non_affine();
            for (const auto& [v, c] : l.sym_coeffs)
              if (c % d != 0) return non_affine();
            l.constant /= d;
            for (auto& [v, c] : l.loop_coeffs) c /= d;
            for (auto& [v, c] : l.sym_coeffs) c /= d;
            return l;
          }
          return non_affine();
        case fir::BinOp::Pow:
        default:
          return non_affine();
      }
    }
    case ExprKind::ArrayRef:     // subscripted subscript: T(IX(7)+I)
    case ExprKind::Intrinsic:    // MOD/ABS/... of loop vars
      if (symbolize) {
        if (auto sym = (*symbolize)(e)) {
          AffineForm f;
          f.affine = true;
          f.sym_coeffs[*sym] = 1;
          return f;
        }
      }
      return non_affine();
    case ExprKind::Unknown:      // opaque annotation value
    case ExprKind::Unique:       // handled by the dedicated injectivity path
    case ExprKind::Section:
    case ExprKind::RealLit:
    case ExprKind::LogicalLit:
    case ExprKind::StrLit:
      return non_affine();
  }
  return non_affine();
}

}  // namespace

AffineForm normalize_affine(const fir::Expr& e, const VarClassifier& classify) {
  return normalize_rec(e, classify, nullptr);
}

AffineForm normalize_affine(const fir::Expr& e, const VarClassifier& classify,
                            const OpaqueSymbolizer& symbolize) {
  return normalize_rec(e, classify, &symbolize);
}

AffineForm normalize_invariant(const fir::Expr& e) {
  return normalize_rec(
      e, [](const std::string&) { return VarClass::Invariant; }, nullptr);
}

}  // namespace ap::analysis
