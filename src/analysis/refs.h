// Memory-reference collection for one loop nest.
//
// Given a DO loop L, collect_loop_refs() flattens every scalar and array
// access in L's body into MemRef records carrying: program order within one
// iteration, conditional context (under an IF), the stack of inner loops
// enclosing the access, and whether the access is a write. The dependence
// tester (deptest.h), the scalar classifier (scalars.h) and the array-kill
// privatizer (sections.h) all consume this one collection.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fir/ast.h"
#include "sema/symbols.h"

namespace ap::analysis {

// One inner loop enclosing a reference (relative to the analyzed loop).
struct InnerLoop {
  std::string var;
  const fir::Expr* lo = nullptr;
  const fir::Expr* hi = nullptr;
  const fir::Expr* step = nullptr;  // null => 1
};

struct MemRef {
  std::string array;                   // upper-cased name; scalars too
  bool is_write = false;
  bool is_scalar = false;              // VarRef to a scalar symbol
  bool whole_array = false;            // VarRef naming an array (annotation
                                       // whole-array read/write)
  std::vector<const fir::Expr*> subs;  // subscripts (may contain Sections)
  const fir::Stmt* stmt = nullptr;
  int seq = 0;                         // program order within one iteration
  bool conditional = false;            // under an IF inside the loop body
  std::vector<InnerLoop> inner_loops;  // loops enclosing the ref INSIDE L,
                                       // outermost first
};

struct LoopRefs {
  std::vector<MemRef> refs;
  bool has_call = false;       // un-inlined CALL => unanalyzable (Polaris
                               // default behaviour without IPA)
  bool has_io = false;         // WRITE inside the loop
  bool has_stop = false;       // STOP inside the loop
  bool has_return = false;     // premature exit
};

// Collect every reference inside `loop`'s body. `sym_of` resolves a name to
// its symbol info in the enclosing unit (to distinguish scalars from
// arrays); names without symbols are treated as scalars.
LoopRefs collect_loop_refs(const fir::Stmt& loop, const sema::UnitInfo& unit);

// Constant loop bounds for Banerjee-style range reasoning: var -> [lo, hi]
// when both bounds fold to integers in `unit`.
struct LoopBounds {
  std::optional<int64_t> lo, hi;
  std::optional<int64_t> trip() const {
    if (!lo || !hi) return std::nullopt;
    return *hi >= *lo ? *hi - *lo + 1 : 0;
  }
};

LoopBounds fold_bounds(const fir::Stmt& do_stmt, const sema::SemaContext& sema,
                       const std::string& unit_name);

}  // namespace ap::analysis
