#include "analysis/sections.h"

#include <optional>
#include <vector>

#include "analysis/affine.h"

namespace ap::analysis {

namespace {

// Dimension range with symbolic affine bounds (no loop vars after widening).
struct Rng {
  AffineForm lo, hi;
};

struct Section {
  bool full = false;
  bool unknown = false;  // unanalyzable subscript somewhere
  std::vector<Rng> dims;
};

// form must be constant-only and >= 0 for a provable comparison.
bool provably_ge0(const AffineForm& f) {
  return f.affine && f.loop_coeffs.empty() && f.sym_coeffs.empty() &&
         f.constant >= 0;
}

bool covers(const Section& w, const Section& r) {
  if (w.unknown) return false;
  if (w.full) return true;
  if (r.full || r.unknown) return false;
  if (w.dims.size() != r.dims.size()) return false;
  for (size_t d = 0; d < w.dims.size(); ++d) {
    AffineForm lo_ok = AffineForm::difference(r.dims[d].lo, w.dims[d].lo);
    AffineForm hi_ok = AffineForm::difference(w.dims[d].hi, r.dims[d].hi);
    if (!provably_ge0(lo_ok) || !provably_ge0(hi_ok)) return false;
  }
  return true;
}

bool covered_by_any(const std::vector<Section>& musts, const Section& r) {
  for (const auto& w : musts)
    if (covers(w, r)) return true;
  return false;
}

class KillAnalyzer {
 public:
  KillAnalyzer(const std::string& array, const std::string& parallel_var,
               const sema::UnitInfo& unit,
               const std::function<bool(const fir::Stmt&)>& trip_ge1)
      : array_(array), pvar_(parallel_var), unit_(unit), trip_ge1_(trip_ge1) {}

  ArrayPrivVerdict run(const fir::Stmt& loop) {
    std::vector<Section> musts;
    scan(loop.body, musts);
    ArrayPrivVerdict v;
    if (!fail_.empty()) {
      v.reason = fail_;
      return v;
    }
    // Condition (2): every write inside the must region.
    for (const auto& w : writes_) {
      if (!covered_by_any(musts, w)) {
        v.reason = "write section not covered by the must-written region";
        return v;
      }
    }
    // Condition (3): the must region must not vary with the parallel index.
    for (const auto& m : musts) {
      if (m.full) continue;
      for (const auto& d : m.dims) {
        if (depends_on_pvar(d.lo) || depends_on_pvar(d.hi)) {
          v.reason = "must-written region varies with the parallel loop index";
          return v;
        }
      }
    }
    if (!saw_write_) {
      v.reason = "array is never written in the loop";
      return v;
    }
    v.privatizable = true;
    v.reason = "all reads killed by same-iteration writes";
    return v;
  }

 private:
  std::string array_, pvar_;
  const sema::UnitInfo& unit_;
  const std::function<bool(const fir::Stmt&)>& trip_ge1_;
  std::string fail_;
  std::vector<Section> writes_;  // every write section (for condition 2)
  bool saw_write_ = false;

  struct LoopFrame {
    std::string var;
    AffineForm lo, hi;
    bool bounds_ok = false;
  };
  std::vector<LoopFrame> stack_;

  bool depends_on_pvar(const AffineForm& f) const {
    if (!f.affine) return true;
    if (f.loop_coeffs.count(pvar_)) return true;
    for (const auto& [s, c] : f.sym_coeffs) {
      if (s == pvar_) return true;
      // Composite symbols like "(K*N)" embed the index name.
      if (s.find("(" + pvar_ + "*") != std::string::npos) return true;
      if (s.find("*" + pvar_ + ")") != std::string::npos) return true;
    }
    return false;
  }

  VarClassifier classifier() const {
    return [this](const std::string& name) {
      for (const auto& fr : stack_)
        if (fr.var == name) return VarClass::LoopIndex;
      // Everything else — including the parallel index and scalars assigned
      // within the iteration — acts as a within-iteration symbol.
      return VarClass::Invariant;
    };
  }

  // Remove inner loop variables from a bound form by substituting the
  // variable's own bound (minimize or maximize). Innermost first so that
  // bound forms referencing outer indices resolve on later rounds.
  std::optional<AffineForm> widen(AffineForm f, bool maximize) const {
    if (!f.affine) return std::nullopt;
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      auto ci = f.loop_coeffs.find(it->var);
      if (ci == f.loop_coeffs.end()) continue;
      int64_t c = ci->second;
      if (!it->bounds_ok) return std::nullopt;
      f.loop_coeffs.erase(it->var);
      AffineForm sub = (c > 0) == maximize ? it->hi : it->lo;
      sub.scale(c);
      f += sub;
      if (!f.affine) return std::nullopt;
    }
    if (!f.loop_coeffs.empty()) return std::nullopt;  // unknown var remains
    return f;
  }

  // Build the section touched by one reference.
  Section section_of(const fir::Expr& e) {
    Section s;
    if (e.kind == fir::ExprKind::VarRef) {
      s.full = true;
      return s;
    }
    VarClassifier cls = classifier();
    for (const auto& sub : e.args) {
      if (!sub) {
        s.unknown = true;
        return s;
      }
      AffineForm lo_f, hi_f;
      if (sub->kind == fir::ExprKind::Section) {
        const fir::Expr* lo = sub->args[0].get();
        const fir::Expr* hi = sub->args[1].get();
        if (!lo || !hi) {
          s.unknown = true;
          return s;
        }
        lo_f = normalize_affine(*lo, cls);
        hi_f = normalize_affine(*hi, cls);
      } else {
        lo_f = normalize_affine(*sub, cls);
        hi_f = lo_f;
      }
      auto wlo = widen(lo_f, /*maximize=*/false);
      auto whi = widen(hi_f, /*maximize=*/true);
      if (!wlo || !whi) {
        s.unknown = true;
        return s;
      }
      s.dims.push_back(Rng{*wlo, *whi});
    }
    return s;
  }

  void read_event(const fir::Expr& e, const std::vector<Section>& musts) {
    Section r = section_of(e);
    if (!covered_by_any(musts, r) && fail_.empty())
      fail_ = "read of " + array_ + " not covered by a preceding must-write";
  }

  void write_event(const fir::Expr& e, std::vector<Section>& musts,
                   bool conditional) {
    Section w = section_of(e);
    saw_write_ = true;
    writes_.push_back(w);
    if (!conditional && !w.unknown) musts.push_back(w);
  }

  void scan_expr_reads(const fir::Expr& e, const std::vector<Section>& musts) {
    fir::walk_expr_tree(e, [&](const fir::Expr& x) {
      if ((x.kind == fir::ExprKind::VarRef || x.kind == fir::ExprKind::ArrayRef) &&
          x.name == array_) {
        // Whole-array read or element read.
        read_event(x, musts);
      }
    });
  }

  void scan(const std::vector<fir::StmtPtr>& body, std::vector<Section>& musts,
            bool conditional = false) {
    for (const auto& sp : body) {
      if (!sp || !fail_.empty()) return;
      const fir::Stmt& s = *sp;
      switch (s.kind) {
        case fir::StmtKind::Assign:
        case fir::StmtKind::TupleAssign: {
          if (s.rhs) scan_expr_reads(*s.rhs, musts);
          for (const auto& l : s.lhs) {
            if (!l) continue;
            if (l->name == array_ && (l->kind == fir::ExprKind::VarRef ||
                                      l->kind == fir::ExprKind::ArrayRef)) {
              if (l->kind == fir::ExprKind::ArrayRef)
                for (const auto& sub : l->args)
                  if (sub) scan_expr_reads(*sub, musts);
              write_event(*l, musts, conditional);
            } else if (l->kind == fir::ExprKind::ArrayRef) {
              for (const auto& sub : l->args)
                if (sub) scan_expr_reads(*sub, musts);
            }
          }
          break;
        }
        case fir::StmtKind::Do: {
          if (s.do_lo) scan_expr_reads(*s.do_lo, musts);
          if (s.do_hi) scan_expr_reads(*s.do_hi, musts);
          if (s.do_step) scan_expr_reads(*s.do_step, musts);
          LoopFrame fr;
          fr.var = s.do_var;
          if (s.do_lo && s.do_hi && !s.do_step) {
            AffineForm lo = normalize_affine(*s.do_lo, classifier());
            AffineForm hi = normalize_affine(*s.do_hi, classifier());
            if (lo.affine && hi.affine) {
              fr.lo = lo;
              fr.hi = hi;
              fr.bounds_ok = true;
            }
          }
          stack_.push_back(fr);
          std::vector<Section> inner_musts = musts;
          scan(s.body, inner_musts, conditional);
          // Widen must-writes the body added over the inner index. They
          // become must-writes here only if the loop provably runs.
          bool runs = trip_ge1_ && trip_ge1_(s);
          std::vector<Section> added(inner_musts.begin() + musts.size(),
                                     inner_musts.end());
          stack_.pop_back();
          if (runs && !conditional) {
            for (auto& a : added) {
              if (a.full) {
                musts.push_back(a);
                continue;
              }
              Section widened;
              bool ok = true;
              for (auto& d : a.dims) {
                // Bounds may still carry the inner var; substitute range.
                stack_.push_back(fr);
                auto wlo = widen(d.lo, false);
                auto whi = widen(d.hi, true);
                stack_.pop_back();
                if (!wlo || !whi) {
                  ok = false;
                  break;
                }
                widened.dims.push_back(Rng{*wlo, *whi});
              }
              if (ok) musts.push_back(widened);
            }
          }
          break;
        }
        case fir::StmtKind::If: {
          if (s.cond) scan_expr_reads(*s.cond, musts);
          std::vector<Section> t = musts;
          scan(s.body, t, /*conditional=*/true);
          std::vector<Section> e = musts;
          scan(s.else_body, e, /*conditional=*/true);
          // No must contributions from conditional branches.
          break;
        }
        case fir::StmtKind::Call:
          // Loops containing calls are rejected before privatization; be
          // safe anyway.
          fail_ = "opaque CALL inside loop";
          return;
        case fir::StmtKind::Write:
          for (const auto& a : s.args)
            if (a) scan_expr_reads(*a, musts);
          break;
        case fir::StmtKind::TaggedRegion:
          scan(s.body, musts, conditional);
          break;
        case fir::StmtKind::Stop:
        case fir::StmtKind::Return:
        case fir::StmtKind::Continue:
          break;
      }
    }
  }
};

}  // namespace

ArrayPrivVerdict array_privatizable(
    const fir::Stmt& loop, const std::string& array,
    const sema::UnitInfo& unit,
    const std::function<bool(const fir::Stmt&)>& trip_at_least_one) {
  KillAnalyzer ka(array, loop.do_var, unit, trip_at_least_one);
  return ka.run(loop);
}

}  // namespace ap::analysis
