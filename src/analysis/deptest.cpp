#include "analysis/deptest.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <numeric>

namespace ap::analysis {

namespace {

constexpr int64_t kInf = std::numeric_limits<int64_t>::max() / 4;

// A linear term of the dependence equation with side-tagged variables: the
// same inner-loop variable on the two sides of the equation denotes two
// independent instances.
struct Term {
  std::string var;   // original variable name (for bound lookup)
  bool side_b;       // instance tag
  int64_t coeff;
};

struct Interval {
  int64_t lo = -kInf;
  int64_t hi = kInf;
  bool bounded() const { return lo > -kInf && hi < kInf; }
};

Interval term_range(const Term& t, const DepContext& ctx) {
  auto it = ctx.bounds.find(t.var);
  if (it == ctx.bounds.end() || !it->second.lo || !it->second.hi)
    return Interval{};
  int64_t a = t.coeff * *it->second.lo;
  int64_t b = t.coeff * *it->second.hi;
  return Interval{std::min(a, b), std::max(a, b)};
}

Interval sum_ranges(const std::vector<Term>& terms, const DepContext& ctx) {
  Interval total{0, 0};
  for (const auto& t : terms) {
    Interval r = term_range(t, ctx);
    total.lo = (total.lo <= -kInf || r.lo <= -kInf) ? -kInf : total.lo + r.lo;
    total.hi = (total.hi >= kInf || r.hi >= kInf) ? kInf : total.hi + r.hi;
  }
  return total;
}

// Build the classifier for one side of the equation.
VarClassifier side_classifier(const std::vector<InnerLoop>& loops,
                              const DepContext& ctx) {
  return [&loops, &ctx](const std::string& name) {
    if (name == ctx.parallel_var) return VarClass::LoopIndex;
    for (const auto& il : loops)
      if (il.var == name) return VarClass::LoopIndex;
    if (ctx.scalar_invariant && ctx.scalar_invariant(name))
      return VarClass::Invariant;
    return VarClass::Variant;
  };
}

// Symbolize loop-invariant array elements: the array must be read-only in
// the loop and every subscript must normalize with no loop variables.
OpaqueSymbolizer side_symbolizer(const std::vector<InnerLoop>& loops,
                                 const DepContext& ctx) {
  return [&loops, &ctx](const fir::Expr& e) -> std::optional<std::string> {
    if (e.kind != fir::ExprKind::ArrayRef) return std::nullopt;
    if (!ctx.array_readonly || !ctx.array_readonly(e.name)) return std::nullopt;
    VarClassifier cls = side_classifier(loops, ctx);
    for (const auto& sub : e.args) {
      if (!sub) return std::nullopt;
      // Nested invariant elements (IX(IC(3))) recurse through the same hook.
      OpaqueSymbolizer self = side_symbolizer(loops, ctx);
      AffineForm f = normalize_affine(*sub, cls, self);
      if (!f.affine || f.has_loop_vars()) return std::nullopt;
    }
    return fir::expr_to_string(e);
  };
}

AffineForm side_normalize(const fir::Expr& e, const std::vector<InnerLoop>& loops,
                          const DepContext& ctx) {
  return normalize_affine(e, side_classifier(loops, ctx),
                          side_symbolizer(loops, ctx));
}

// Widened value range of an affine form over its loop variables (used for
// section bounds and Banerjee-style interval reasoning on one side).
std::optional<Interval> form_range(const AffineForm& f, const DepContext& ctx) {
  if (!f.affine) return std::nullopt;
  if (!f.sym_coeffs.empty()) return std::nullopt;  // symbolic => unbounded
  Interval total{f.constant, f.constant};
  for (const auto& [v, c] : f.loop_coeffs) {
    auto it = ctx.bounds.find(v);
    if (it == ctx.bounds.end() || !it->second.lo || !it->second.hi)
      return std::nullopt;
    int64_t a = c * *it->second.lo;
    int64_t b = c * *it->second.hi;
    total.lo += std::min(a, b);
    total.hi += std::max(a, b);
  }
  return total;
}

// Range of one dimension access: a plain expression is [e,e] widened over
// loop vars; a section is [lo,hi]. nullopt => unanalyzable.
std::optional<Interval> dim_range(const fir::Expr* e,
                                  const std::vector<InnerLoop>& loops,
                                  const DepContext& ctx) {
  if (!e) return std::nullopt;
  if (e->kind == fir::ExprKind::Section) {
    const fir::Expr* lo = e->args[0].get();
    const fir::Expr* hi = e->args[1].get();
    if (!lo || !hi) return std::nullopt;  // open-ended section
    auto rl = form_range(side_normalize(*lo, loops, ctx), ctx);
    auto rh = form_range(side_normalize(*hi, loops, ctx), ctx);
    if (!rl || !rh) return std::nullopt;
    return Interval{rl->lo, rh->hi};
  }
  return form_range(side_normalize(*e, loops, ctx), ctx);
}

DimVerdict affine_dim_test(const fir::Expr& e1,
                           const std::vector<InnerLoop>& a_loops,
                           const fir::Expr& e2,
                           const std::vector<InnerLoop>& b_loops,
                           const DepContext& ctx) {
  AffineForm f1 = side_normalize(e1, a_loops, ctx);
  AffineForm f2 = side_normalize(e2, b_loops, ctx);
  if (!f1.affine || !f2.affine) return DimVerdict::NoInfo;

  // Shared symbols must cancel; a net symbolic part defeats the tests.
  {
    AffineForm net;
    net.affine = true;
    net.sym_coeffs = f1.sym_coeffs;
    for (const auto& [v, c] : f2.sym_coeffs) {
      net.sym_coeffs[v] -= c;
      if (net.sym_coeffs[v] == 0) net.sym_coeffs.erase(v);
    }
    if (!net.sym_coeffs.empty()) return DimVerdict::NoInfo;
  }

  int64_t c = f1.constant - f2.constant;  // equation: terms + c = 0
  std::vector<Term> terms;
  int64_t aL = 0, bL = 0;
  for (const auto& [v, k] : f1.loop_coeffs) {
    if (v == ctx.parallel_var)
      aL = k;
    else
      terms.push_back(Term{v, false, k});
  }
  for (const auto& [v, k] : f2.loop_coeffs) {
    if (v == ctx.parallel_var)
      bL = k;
    else
      terms.push_back(Term{v, true, -k});
  }

  // ZIV: no variables at all.
  if (terms.empty() && aL == 0 && bL == 0)
    return c != 0 ? DimVerdict::NeverEqual : DimVerdict::NoInfo;

  // GCD test over every variable instance (i and i' are distinct instances).
  {
    int64_t g = 0;
    for (const auto& t : terms) g = std::gcd(g, std::llabs(t.coeff));
    g = std::gcd(g, std::llabs(aL));
    g = std::gcd(g, std::llabs(bL));
    if (g > 0 && c % g != 0) return DimVerdict::NeverEqual;
  }

  // Banerjee extreme-value test: aL*i - bL*i' + Σ terms + c = 0.
  if (ctx.use_banerjee) {
    std::vector<Term> all = terms;
    if (aL) all.push_back(Term{ctx.parallel_var, false, aL});
    if (bL) all.push_back(Term{ctx.parallel_var, true, -bL});
    Interval r = sum_ranges(all, ctx);
    if (r.bounded() && (-c < r.lo || -c > r.hi)) return DimVerdict::NeverEqual;
  }

  // Strong SIV family: equal parallel-loop coefficients.
  if (ctx.use_siv_refinement && aL == bL && aL != 0) {
    // a*(i - i') + R + c = 0 with R = Σ inner terms.
    if (terms.empty()) {
      // Pure strong SIV: distance must be -c/a.
      if (c % aL != 0) return DimVerdict::NeverEqual;
      int64_t d = -c / aL;
      if (d == 0) return DimVerdict::ForcesZero;
      auto it = ctx.bounds.find(ctx.parallel_var);
      if (it != ctx.bounds.end()) {
        auto trip = it->second.trip();
        if (trip && std::llabs(d) >= *trip) return DimVerdict::NeverEqual;
      }
      return DimVerdict::NoInfo;
    }
    // Carried-satisfiability refinement: can a*delta = -c - R with delta!=0?
    Interval rR = sum_ranges(terms, ctx);
    if (rR.bounded()) {
      int64_t max_delta = kInf;
      auto it = ctx.bounds.find(ctx.parallel_var);
      if (it != ctx.bounds.end()) {
        if (auto trip = it->second.trip()) max_delta = *trip - 1;
      }
      auto delta_possible = [&](int64_t sign) {
        // delta in [1, max_delta] (or [-max_delta, -1]); a*delta interval:
        int64_t lo = aL * sign;
        int64_t hi = (max_delta >= kInf) ? (aL > 0 ? kInf : -kInf)
                                         : aL * sign * max_delta;
        if (lo > hi) std::swap(lo, hi);
        // need intersection with [-c - rR.hi, -c - rR.lo]
        int64_t tlo = -c - rR.hi, thi = -c - rR.lo;
        return !(hi < tlo || lo > thi);
      };
      if (!delta_possible(+1) && !delta_possible(-1)) {
        // Only delta == 0 can satisfy the equation (if anything can).
        return DimVerdict::ForcesZero;
      }
    }
    return DimVerdict::NoInfo;
  }

  // Weak-zero SIV: the parallel variable appears on one side only
  // (a*i + c1 == c2): the only candidate iteration is i = (c2-c1)/a; rule
  // the dependence out when that is fractional or outside the loop range.
  if (ctx.use_siv_refinement && terms.empty() &&
      ((aL != 0 && bL == 0) || (aL == 0 && bL != 0))) {
    int64_t a = (aL != 0) ? aL : -bL;
    if (c % a != 0) return DimVerdict::NeverEqual;
    int64_t i0 = -c / a;
    auto it = ctx.bounds.find(ctx.parallel_var);
    if (it != ctx.bounds.end() && it->second.lo && it->second.hi &&
        (i0 < *it->second.lo || i0 > *it->second.hi))
      return DimVerdict::NeverEqual;
    return DimVerdict::NoInfo;
  }

  // Weak-crossing SIV (a*i + b*i' with a == -b): solutions satisfy
  // i + i' = -c/a — a crossing point; integral/range reasoning rules many
  // out (i + i' must be an integer in [2*lo, 2*hi]).
  if (ctx.use_siv_refinement && terms.empty() && aL != 0 && aL == -bL) {
    if (c % aL != 0) return DimVerdict::NeverEqual;
    int64_t sum = -c / aL;
    auto it = ctx.bounds.find(ctx.parallel_var);
    if (it != ctx.bounds.end() && it->second.lo && it->second.hi &&
        (sum < 2 * *it->second.lo || sum > 2 * *it->second.hi))
      return DimVerdict::NeverEqual;
    return DimVerdict::NoInfo;
  }

  // Parallel var appears on neither side: the dimension never distinguishes
  // iterations; satisfiable => no information about L.
  return DimVerdict::NoInfo;
}

DimVerdict section_dim_test(const fir::Expr* e1,
                            const std::vector<InnerLoop>& a_loops,
                            const fir::Expr* e2,
                            const std::vector<InnerLoop>& b_loops,
                            const DepContext& ctx) {
  auto r1 = dim_range(e1, a_loops, ctx);
  auto r2 = dim_range(e2, b_loops, ctx);
  if (r1 && r2 && (r1->hi < r2->lo || r2->hi < r1->lo))
    return DimVerdict::NeverEqual;
  return DimVerdict::NoInfo;
}

}  // namespace

DimVerdict test_dim(const fir::Expr* e1, const std::vector<InnerLoop>& a_loops,
                    const fir::Expr* e2, const std::vector<InnerLoop>& b_loops,
                    const DepContext& ctx) {
  if (!e1 || !e2) return DimVerdict::NoInfo;

  // Injectivity rule for the unique() annotation operator: equal outputs
  // require equal operand tuples, so the operand tuple is tested like a
  // nested multi-dimensional subscript.
  if (e1->kind == fir::ExprKind::Unique && e2->kind == fir::ExprKind::Unique) {
    if (e1->args.size() != e2->args.size()) return DimVerdict::NoInfo;
    bool forces_zero = false;
    for (size_t i = 0; i < e1->args.size(); ++i) {
      DimVerdict v = test_dim(e1->args[i].get(), a_loops, e2->args[i].get(),
                              b_loops, ctx);
      if (v == DimVerdict::NeverEqual) return DimVerdict::NeverEqual;
      if (v == DimVerdict::ForcesZero) forces_zero = true;
    }
    return forces_zero ? DimVerdict::ForcesZero : DimVerdict::NoInfo;
  }
  if (e1->kind == fir::ExprKind::Unique || e2->kind == fir::ExprKind::Unique)
    return DimVerdict::NoInfo;

  if (e1->kind == fir::ExprKind::Section || e2->kind == fir::ExprKind::Section)
    return section_dim_test(e1, a_loops, e2, b_loops, ctx);

  return affine_dim_test(*e1, a_loops, *e2, b_loops, ctx);
}

PairVerdict test_pair(const MemRef& a, const MemRef& b, const DepContext& ctx) {
  if (!a.is_write && !b.is_write) return PairVerdict::Independent;
  if (a.is_scalar || b.is_scalar) return PairVerdict::MayCarry;  // not ours

  // Whole-array references overlap everything; no dimension can help.
  if (a.whole_array || b.whole_array) return PairVerdict::MayCarry;

  // Rank-mismatched views of one array (a linearized reference against the
  // original multi-dimensional one) cannot be compared dimension-by-
  // dimension: element addresses interleave across dimensions. Conservative.
  if (a.subs.size() != b.subs.size()) return PairVerdict::MayCarry;

  bool forces_zero = false;
  for (size_t d = 0; d < a.subs.size(); ++d) {
    DimVerdict v = test_dim(a.subs[d], a.inner_loops, b.subs[d], b.inner_loops, ctx);
    if (v == DimVerdict::NeverEqual) return PairVerdict::Independent;
    if (v == DimVerdict::ForcesZero) forces_zero = true;
  }
  return forces_zero ? PairVerdict::NotCarried : PairVerdict::MayCarry;
}

}  // namespace ap::analysis
