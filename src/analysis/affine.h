// Affine (linear) normalization of subscript expressions.
//
// A subscript is usable by the dependence tests only when it normalizes to
//     c0 + Σ ci * LOOPVARi + Σ sj * SYMBOLj
// with integer ci/sj, where SYMBOLs are loop-invariant scalars (they take
// the same value in both references of a dependence equation).
//
// Everything else — subscripted subscripts like T(IX(7)+I) created by
// forward substitution (paper §II.A.1), products of a loop variable with a
// symbolic array extent created by dimension linearization (paper §II.A.2),
// `unknown(...)` values, MOD/division — is non-affine, and the dependence
// tester must be conservative about it, which is precisely how the paper's
// "loss of parallelism" pathologies manifest.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "fir/ast.h"

namespace ap::analysis {

// How a scalar name behaves relative to the loop nest being analyzed.
enum class VarClass : uint8_t {
  LoopIndex,  // an index of one of the loops in the nest under analysis
  Invariant,  // not modified inside the analyzed loop => a shared symbol
  Variant,    // modified inside the loop and not a recognized index =>
              // unanalyzable occurrence
};

using VarClassifier = std::function<VarClass(const std::string&)>;

// Optional hook consulted for sub-expressions the linear rules cannot
// handle (ArrayRef, Intrinsic). Returning a name folds the whole
// sub-expression into a single invariant symbol of that name — used for
// loop-invariant array elements such as IDBEGS(ISS) inside a K loop, which
// Polaris handles via forward substitution + invariance (paper §II.B.1).
// Returning nullopt keeps the expression non-affine.
using OpaqueSymbolizer =
    std::function<std::optional<std::string>(const fir::Expr&)>;

struct AffineForm {
  bool affine = false;
  int64_t constant = 0;
  // Loop-variable coefficients, keyed by upper-cased index name.
  std::map<std::string, int64_t> loop_coeffs;
  // Loop-invariant symbolic terms (name -> integer coefficient). A composite
  // product of two invariants appears under a canonical "(A*B)" name.
  std::map<std::string, int64_t> sym_coeffs;

  bool is_constant() const {
    return affine && loop_coeffs.empty() && sym_coeffs.empty();
  }
  bool has_loop_vars() const { return !loop_coeffs.empty(); }
  int64_t coeff_of(const std::string& loop_var) const {
    auto it = loop_coeffs.find(loop_var);
    return it == loop_coeffs.end() ? 0 : it->second;
  }

  AffineForm& operator+=(const AffineForm& o);
  AffineForm& operator-=(const AffineForm& o);
  void scale(int64_t k);
  void negate() { scale(-1); }

  // a - b with both required affine; result non-affine otherwise.
  static AffineForm difference(const AffineForm& a, const AffineForm& b);

  std::string to_string() const;  // debugging / tests
};

// Normalize `e` into an affine form. The classifier decides how each scalar
// name behaves. Returns a form with affine=false when the expression cannot
// be linearized (see file comment for the catalogue of causes).
AffineForm normalize_affine(const fir::Expr& e, const VarClassifier& classify);
AffineForm normalize_affine(const fir::Expr& e, const VarClassifier& classify,
                            const OpaqueSymbolizer& symbolize);

// Convenience: normalize with "every scalar is invariant" (useful for loop
// bounds, which may not reference the loop's own index).
AffineForm normalize_invariant(const fir::Expr& e);

}  // namespace ap::analysis
