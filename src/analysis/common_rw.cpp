#include "analysis/common_rw.h"

namespace ap::analysis {

namespace {

using namespace ap::fir;

struct Collector {
  // Member name -> owning block, from the unit's own COMMON declarations.
  std::map<std::string, std::string> member_block;
  CommonRW out;

  void read_name(const std::string& name) {
    auto it = member_block.find(name);
    if (it != member_block.end()) out.reads[it->second].insert(name);
  }
  void write_name(const std::string& name) {
    auto it = member_block.find(name);
    if (it != member_block.end()) out.writes[it->second].insert(name);
  }

  // Every VarRef/ArrayRef reachable from `e` reads (subscripts included).
  void read_expr(const Expr* e) {
    if (!e) return;
    walk_expr_tree(*e, [&](const Expr& x) {
      if (x.kind == ExprKind::VarRef || x.kind == ExprKind::ArrayRef)
        read_name(x.name);
    });
  }

  // A CALL argument passes by reference: the callee may read or write any
  // member the expression mentions.
  void readwrite_expr(const Expr* e) {
    if (!e) return;
    walk_expr_tree(*e, [&](const Expr& x) {
      if (x.kind == ExprKind::VarRef || x.kind == ExprKind::ArrayRef) {
        read_name(x.name);
        write_name(x.name);
      }
    });
  }

  // Assignment target: the base writes, its subscripts read.
  void write_target(const Expr* e) {
    if (!e) return;
    if (e->kind == ExprKind::VarRef || e->kind == ExprKind::ArrayRef) {
      write_name(e->name);
      for (const auto& sub : e->args) read_expr(sub.get());
      return;
    }
    // Defensive: an unexpected target shape degrades to read+write.
    readwrite_expr(e);
  }

  void visit(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Assign:
      case StmtKind::TupleAssign:
        for (const auto& t : s.lhs) write_target(t.get());
        read_expr(s.rhs.get());
        break;
      case StmtKind::Do:
        write_name(s.do_var);
        read_expr(s.do_lo.get());
        read_expr(s.do_hi.get());
        read_expr(s.do_step.get());
        break;
      case StmtKind::If:
        read_expr(s.cond.get());
        break;
      case StmtKind::Call:
        for (const auto& a : s.args) readwrite_expr(a.get());
        break;
      case StmtKind::Write:
        for (const auto& a : s.args) read_expr(a.get());
        break;
      case StmtKind::TaggedRegion:
        for (const auto& a : s.arg_hints) readwrite_expr(a.get());
        break;
      case StmtKind::Stop:
      case StmtKind::Return:
      case StmtKind::Continue:
        break;
    }
  }
};

}  // namespace

CommonRW common_rw_summary(const fir::ProgramUnit& unit) {
  Collector c;
  for (const auto& cb : unit.commons)
    for (const auto& v : cb.vars) c.member_block.emplace(v, cb.name);
  fir::walk_stmts(unit.body, [&](const fir::Stmt& s) {
    c.visit(s);
    return true;  // recurse into Do/If/TaggedRegion bodies
  });
  return c.out;
}

}  // namespace ap::analysis
