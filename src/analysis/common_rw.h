// Per-unit read/write summary of COMMON block members: which names in
// each COMMON block a unit reads and which it writes.
//
// This is the cheap up-front syntactic summary that lets the incremental
// dependence graph (incr/depgraph.h) use DIRECTED COMMON edges — unit U
// depends on sharer V only when V writes a member U reads — instead of
// the bidirectional all-sharers rule that caps unit reuse at 1/|clique|
// on COMMON-heavy apps (DYFESM). The summary is deliberately
// conservative where by-reference semantics make the direction unknowable
// syntactically:
//
//   * assignment targets write their base array/scalar; their subscripts
//     read,
//   * every other expression occurrence reads,
//   * a member appearing anywhere in a CALL argument (or a tagged
//     region's argument hints) counts as both read and written — the
//     callee may do either through the reference,
//   * a DO induction variable counts as written.
//
// Membership is the unit's own COMMON declaration (sema resolves COMMON
// strictly per unit), so the summary needs nothing but the unit itself.
#pragma once

#include <map>
#include <set>
#include <string>

#include "fir/ast.h"

namespace ap::analysis {

struct CommonRW {
  // Block name -> member names this unit reads / writes.
  std::map<std::string, std::set<std::string>> reads;
  std::map<std::string, std::set<std::string>> writes;

  bool reads_member(const std::string& block, const std::string& name) const {
    auto it = reads.find(block);
    return it != reads.end() && it->second.count(name) > 0;
  }
  bool writes_member(const std::string& block, const std::string& name) const {
    auto it = writes.find(block);
    return it != writes.end() && it->second.count(name) > 0;
  }
};

CommonRW common_rw_summary(const fir::ProgramUnit& unit);

}  // namespace ap::analysis
