// Array-kill analysis for privatization (paper §II.B.3, §III.B.4).
//
// An array A is privatizable with respect to a loop L when
//   (1) every read of A inside one iteration is covered by a must-write of
//       the same iteration that precedes it (the "kill"),
//   (2) every write section the loop performs lies inside the must-written
//       region (so the loop's footprint is the must region), and
//   (3) the must-written region does not depend directly on L's index
//       (otherwise different iterations write different regions and the
//       final state cannot be recovered from the last iteration).
//
// Sections are rectangular, dimension-wise [lo:hi] ranges with affine
// symbolic bounds; whole-array assignments (the annotation idiom
// "XY = unknown(...)") produce a Full section, which is what makes global
// temporary arrays like XY/NDX/NDY/WTDET privatizable after annotation-
// based inlining even when the real implementations only modify subsets
// (paper Figures 8-9 and §III.B.4).
//
// Scalars that are re-assigned inside the iteration are treated as stable
// symbols within that iteration; this matches Polaris' behaviour after
// scalar renaming and is validated dynamically by the runtime tester.
#pragma once

#include <string>

#include "analysis/refs.h"
#include "fir/ast.h"
#include "sema/symbols.h"

namespace ap::analysis {

struct ArrayPrivVerdict {
  bool privatizable = false;
  std::string reason;  // human-readable explanation for reports/tests
};

// Decide privatizability of `array` w.r.t. `loop`. `trip_at_least_one`
// answers whether an inner DO provably executes (needed to credit must-
// writes made inside inner loops).
ArrayPrivVerdict array_privatizable(
    const fir::Stmt& loop, const std::string& array,
    const sema::UnitInfo& unit,
    const std::function<bool(const fir::Stmt&)>& trip_at_least_one);

}  // namespace ap::analysis
