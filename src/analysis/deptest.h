// Pairwise data-dependence testing for loop parallelization.
//
// The question answered here is the one the parallelizer asks for a
// candidate loop L: can two references to the same array touch the same
// element in DIFFERENT iterations of L?  Per-dimension verdicts:
//
//   NeverEqual  — this dimension's subscripts can never be equal: the pair
//                 is independent outright (ZIV constant difference, GCD
//                 non-divisibility, Banerjee bounds, disjoint sections).
//   ForcesZero  — equality in this dimension implies equal L iterations
//                 (strong SIV with equal coefficients and zero offset):
//                 any dependence is loop-independent w.r.t. L, which does
//                 not block parallelization of L.
//   NoInfo      — satisfiable or unanalyzable (non-affine subscripts, net
//                 symbolic terms, overlapping sections): conservative.
//
// Pair verdict: any NeverEqual dim => Independent; else any ForcesZero dim
// => NotCarried; else MayCarry.
//
// The `unique` annotation operator (paper §III.A) is handled structurally:
// unique(x1..xn) == unique(y1..yn) iff xk == yk for all k (injectivity), so
// a Unique dimension recursively tests its operand tuple like a nested
// multi-dimensional subscript. This replaces the paper's "linear expression
// with unique combination constants" encoding with the same proof power but
// no reliance on magic stride constants (see DESIGN.md §5).
#pragma once

#include <functional>
#include <map>
#include <string>

#include "analysis/affine.h"
#include "analysis/refs.h"

namespace ap::analysis {

enum class DimVerdict : uint8_t { NeverEqual, ForcesZero, NoInfo };
enum class PairVerdict : uint8_t { Independent, NotCarried, MayCarry };

struct DepContext {
  // The loop being parallelized.
  std::string parallel_var;
  // Constant bounds for the parallel loop and any inner loops (by original
  // variable name), when they folded to integers.
  std::map<std::string, LoopBounds> bounds;
  // True if the scalar `name` is not modified anywhere inside the parallel
  // loop (after induction substitution / forward substitution).
  std::function<bool(const std::string&)> scalar_invariant;
  // True if the array `name` has no write references inside the loop; its
  // elements with invariant subscripts act as shared symbols (this is what
  // makes IDBEGS(ISS)+1+K analyzable and IX(7)+I conservatively opaque —
  // paper §II.B.1 vs §II.A.1).
  std::function<bool(const std::string&)> array_readonly;
  // Ablation switches (bench_ablation_deptests): disable the Banerjee
  // extreme-value test and/or the strong-SIV refinement, leaving GCD/ZIV.
  bool use_banerjee = true;
  bool use_siv_refinement = true;
};

// Test one pair of references to the same array. At least one must be a
// write (callers enforce this; read/read pairs are trivially Independent).
PairVerdict test_pair(const MemRef& a, const MemRef& b, const DepContext& ctx);

// Exposed for unit tests: single-dimension verdict for a subscript pair.
// `a_loops`/`b_loops` are the inner loops enclosing each reference.
DimVerdict test_dim(const fir::Expr* e1, const std::vector<InnerLoop>& a_loops,
                    const fir::Expr* e2, const std::vector<InnerLoop>& b_loops,
                    const DepContext& ctx);

}  // namespace ap::analysis
