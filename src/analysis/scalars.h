// Scalar classification for one candidate parallel loop.
//
// Every scalar accessed in the loop body lands in exactly one class:
//
//   ReadOnly   — never written: shared.
//   InnerIndex — index of an inner DO loop: always private.
//   Reduction  — every access has the shape s = s OP expr (OP in +,-,*) or
//                s = MIN/MAX(s, expr): parallelized with a reduction clause.
//   Private    — written before any read on every path through one
//                iteration (must-define) and written on every iteration:
//                privatized with last-value copy-out (the paper's Polaris
//                peels the last iteration for the same effect, §III.B.4).
//   Blocker    — anything else: carries a dependence and the loop cannot be
//                parallelized unless a prior normalization pass (induction
//                substitution, forward substitution) removes the scalar.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "fir/ast.h"
#include "sema/symbols.h"

namespace ap::analysis {

enum class ScalarKind : uint8_t { ReadOnly, InnerIndex, Reduction, Private, Blocker };

struct ScalarInfo {
  ScalarKind kind = ScalarKind::ReadOnly;
  std::string reduction_op;  // "+", "*", "MIN", "MAX" when kind == Reduction
};

struct ScalarClassification {
  std::map<std::string, ScalarInfo> scalars;

  std::vector<std::string> blockers() const;
  std::vector<std::string> privates() const;  // Private + InnerIndex
};

// Classify every scalar referenced inside `loop`'s body. `unit` supplies
// symbol info (to exclude arrays). The loop's own index variable is skipped.
// `trip_at_least_one` callback answers whether a DO statement provably
// executes at least once (used to credit must-defines inside inner loops).
ScalarClassification classify_scalars(
    const fir::Stmt& loop, const sema::UnitInfo& unit,
    const std::function<bool(const fir::Stmt&)>& trip_at_least_one);

}  // namespace ap::analysis
