#include "analysis/scalars.h"

#include "support/text.h"

namespace ap::analysis {

std::vector<std::string> ScalarClassification::blockers() const {
  std::vector<std::string> out;
  for (const auto& [n, i] : scalars)
    if (i.kind == ScalarKind::Blocker) out.push_back(n);
  return out;
}

std::vector<std::string> ScalarClassification::privates() const {
  std::vector<std::string> out;
  for (const auto& [n, i] : scalars)
    if (i.kind == ScalarKind::Private || i.kind == ScalarKind::InnerIndex)
      out.push_back(n);
  return out;
}

namespace {

// Per-scalar summary of one region (statement list).
struct RegionFacts {
  bool uncovered_read = false;  // a read not preceded by a must-write
  bool must_write = false;      // written on every path through the region
  bool any_write = false;
};

class ScalarScanner {
 public:
  ScalarScanner(const sema::UnitInfo& unit,
                const std::function<bool(const fir::Stmt&)>& trip_ge1)
      : unit_(unit), trip_ge1_(trip_ge1) {}

  std::map<std::string, RegionFacts> scan(const std::vector<fir::StmtPtr>& body) {
    std::map<std::string, RegionFacts> facts;
    for (const auto& s : body)
      if (s) seq_combine(facts, stmt(*s));
    return facts;
  }

 private:
  const sema::UnitInfo& unit_;
  const std::function<bool(const fir::Stmt&)>& trip_ge1_;

  bool is_scalar(const std::string& name) const {
    const sema::SymbolInfo* s = unit_.find(name);
    return !s || !s->is_array();
  }

  // Sequential composition: B executes after A.
  static void seq_combine(std::map<std::string, RegionFacts>& a,
                          const std::map<std::string, RegionFacts>& b) {
    for (const auto& [name, fb] : b) {
      RegionFacts& fa = a[name];
      if (!fa.must_write && fb.uncovered_read) fa.uncovered_read = true;
      fa.must_write = fa.must_write || fb.must_write;
      fa.any_write = fa.any_write || fb.any_write;
    }
  }

  // Branch merge for IF.
  static std::map<std::string, RegionFacts> branch_merge(
      const std::map<std::string, RegionFacts>& t,
      const std::map<std::string, RegionFacts>& e) {
    std::map<std::string, RegionFacts> out = t;
    for (auto& [name, f] : out) {
      auto it = e.find(name);
      f.must_write = f.must_write && it != e.end() && it->second.must_write;
      if (it != e.end()) {
        f.uncovered_read = f.uncovered_read || it->second.uncovered_read;
        f.any_write = f.any_write || it->second.any_write;
      }
    }
    for (const auto& [name, f] : e) {
      if (out.count(name)) continue;
      RegionFacts nf = f;
      nf.must_write = false;  // other branch did not write
      out[name] = nf;
    }
    return out;
  }

  void record_reads(const fir::Expr& e, std::map<std::string, RegionFacts>& f) {
    fir::walk_expr_tree(e, [&](const fir::Expr& x) {
      if (x.kind == fir::ExprKind::VarRef && is_scalar(x.name)) {
        RegionFacts& rf = f[x.name];
        if (!rf.must_write) rf.uncovered_read = true;
      }
      // Array subscripts recurse automatically via walk_expr_tree.
    });
  }

  std::map<std::string, RegionFacts> stmt(const fir::Stmt& s) {
    std::map<std::string, RegionFacts> f;
    switch (s.kind) {
      case fir::StmtKind::Assign:
      case fir::StmtKind::TupleAssign: {
        if (s.rhs) record_reads(*s.rhs, f);
        for (const auto& l : s.lhs) {
          if (!l) continue;
          if (l->kind == fir::ExprKind::VarRef && is_scalar(l->name)) {
            RegionFacts& rf = f[l->name];
            rf.must_write = true;
            rf.any_write = true;
          } else if (l->kind == fir::ExprKind::ArrayRef) {
            for (const auto& sub : l->args)
              if (sub) record_reads(*sub, f);
          }
        }
        return f;
      }
      case fir::StmtKind::Do: {
        if (s.do_lo) record_reads(*s.do_lo, f);
        if (s.do_hi) record_reads(*s.do_hi, f);
        if (s.do_step) record_reads(*s.do_step, f);
        // The DO variable is written by the loop header.
        if (is_scalar(s.do_var)) {
          f[s.do_var].must_write = true;
          f[s.do_var].any_write = true;
        }
        auto body = scan(s.body);
        // A zero-trip loop writes nothing: demote must-writes unless the
        // loop provably runs.
        bool runs = trip_ge1_ && trip_ge1_(s);
        for (auto& [name, bf] : body)
          if (!runs) bf.must_write = false;
        seq_combine(f, body);
        return f;
      }
      case fir::StmtKind::If: {
        if (s.cond) record_reads(*s.cond, f);
        auto t = scan(s.body);
        auto e = scan(s.else_body);
        seq_combine(f, branch_merge(t, e));
        return f;
      }
      case fir::StmtKind::Call: {
        // Conservative: a call may read and write its arguments and any
        // global; loops containing calls are rejected earlier, but keep the
        // facts safe anyway.
        for (const auto& a : s.args)
          if (a) record_reads(*a, f);
        return f;
      }
      case fir::StmtKind::Write:
        for (const auto& a : s.args)
          if (a) record_reads(*a, f);
        return f;
      case fir::StmtKind::TaggedRegion: {
        auto b = scan(s.body);
        seq_combine(f, b);
        return f;
      }
      case fir::StmtKind::Stop:
      case fir::StmtKind::Return:
      case fir::StmtKind::Continue:
        return f;
    }
    return f;
  }
};

// Does `name` appear anywhere outside reduction statements of itself?
struct ReductionCheck {
  std::string op;    // normalized op
  bool valid = true;
  int count = 0;
};

void check_reduction(const std::vector<fir::StmtPtr>& body,
                     const std::string& name, ReductionCheck& rc,
                     const sema::UnitInfo& unit) {
  auto mentions = [&](const fir::Expr& e) {
    bool found = false;
    fir::walk_expr_tree(e, [&](const fir::Expr& x) {
      if (x.kind == fir::ExprKind::VarRef && x.name == name) found = true;
    });
    return found;
  };
  for (const auto& sp : body) {
    if (!sp || !rc.valid) return;
    const fir::Stmt& s = *sp;
    // A reduction statement: name = name OP expr  |  name = MIN/MAX(name, e)
    bool is_red_stmt = false;
    if (s.kind == fir::StmtKind::Assign && s.lhs.size() == 1 && s.lhs[0] &&
        s.lhs[0]->kind == fir::ExprKind::VarRef && s.lhs[0]->name == name &&
        s.rhs) {
      const fir::Expr& r = *s.rhs;
      std::string op;
      const fir::Expr* self = nullptr;
      const fir::Expr* other = nullptr;
      if (r.kind == fir::ExprKind::Binary &&
          (r.bin_op == fir::BinOp::Add || r.bin_op == fir::BinOp::Sub ||
           r.bin_op == fir::BinOp::Mul)) {
        op = (r.bin_op == fir::BinOp::Mul) ? "*" : "+";
        const fir::Expr* l = r.args[0].get();
        const fir::Expr* rr = r.args[1].get();
        if (l && l->kind == fir::ExprKind::VarRef && l->name == name) {
          self = l;
          other = rr;
        } else if (rr && rr->kind == fir::ExprKind::VarRef && rr->name == name &&
                   r.bin_op != fir::BinOp::Sub) {
          self = rr;
          other = l;
        }
      } else if (r.kind == fir::ExprKind::Intrinsic &&
                 (ieq(r.name, "MIN") || ieq(r.name, "MAX") ||
                  ieq(r.name, "AMIN1") || ieq(r.name, "AMAX1") ||
                  ieq(r.name, "MIN0") || ieq(r.name, "MAX0")) &&
                 r.args.size() == 2) {
        op = (r.name.find("MAX") != std::string::npos) ? "MAX" : "MIN";
        const fir::Expr* l = r.args[0].get();
        const fir::Expr* rr = r.args[1].get();
        if (l && l->kind == fir::ExprKind::VarRef && l->name == name) {
          self = l;
          other = rr;
        } else if (rr && rr->kind == fir::ExprKind::VarRef && rr->name == name) {
          self = rr;
          other = l;
        }
      }
      if (self && other && !mentions(*other)) {
        if (rc.count == 0) rc.op = op;
        if (rc.op != op) {
          rc.valid = false;
          return;
        }
        ++rc.count;
        is_red_stmt = true;
      }
    }
    if (!is_red_stmt) {
      // Any other mention of the scalar kills the reduction.
      bool touched = false;
      fir::walk_exprs(s, [&](const fir::Expr& x) {
        if (x.kind == fir::ExprKind::VarRef && x.name == name) touched = true;
      });
      if (s.kind == fir::StmtKind::Do && s.do_var == name) touched = true;
      if (touched) {
        rc.valid = false;
        return;
      }
      check_reduction(s.body, name, rc, unit);
      check_reduction(s.else_body, name, rc, unit);
    }
  }
}

}  // namespace

ScalarClassification classify_scalars(
    const fir::Stmt& loop, const sema::UnitInfo& unit,
    const std::function<bool(const fir::Stmt&)>& trip_at_least_one) {
  ScalarClassification out;

  // Inner loop indices are always private.
  std::map<std::string, bool> inner_index;
  fir::walk_stmts(loop.body, [&](const fir::Stmt& s) {
    if (s.kind == fir::StmtKind::Do) inner_index[s.do_var] = true;
    return true;
  });

  ScalarScanner scanner(unit, trip_at_least_one);
  auto facts = scanner.scan(loop.body);

  for (const auto& [name, f] : facts) {
    if (name == loop.do_var) continue;
    const sema::SymbolInfo* sym = unit.find(name);
    if (sym && sym->is_array()) continue;  // arrays handled elsewhere
    ScalarInfo info;
    if (inner_index.count(name)) {
      info.kind = ScalarKind::InnerIndex;
    } else if (!f.any_write) {
      info.kind = ScalarKind::ReadOnly;
    } else {
      ReductionCheck rc;
      check_reduction(loop.body, name, rc, unit);
      if (rc.valid && rc.count > 0) {
        info.kind = ScalarKind::Reduction;
        info.reduction_op = rc.op;
      } else if (!f.uncovered_read && f.must_write) {
        info.kind = ScalarKind::Private;
      } else {
        info.kind = ScalarKind::Blocker;
      }
    }
    out.scalars[name] = info;
  }
  return out;
}

}  // namespace ap::analysis
