#include "analysis/refs.h"

#include <cassert>

namespace ap::analysis {

namespace {

class RefCollector {
 public:
  RefCollector(const sema::UnitInfo& unit, LoopRefs& out)
      : unit_(unit), out_(out) {}

  void body(const std::vector<fir::StmtPtr>& stmts) {
    for (const auto& s : stmts)
      if (s) stmt(*s);
  }

 private:
  const sema::UnitInfo& unit_;
  LoopRefs& out_;
  int seq_ = 0;
  int cond_depth_ = 0;
  std::vector<InnerLoop> loops_;

  bool is_array(const std::string& name) const {
    const sema::SymbolInfo* s = unit_.find(name);
    return s && s->is_array();
  }

  void add_ref(const fir::Expr& e, bool is_write, const fir::Stmt& in_stmt) {
    MemRef r;
    r.array = e.name;
    r.is_write = is_write;
    r.stmt = &in_stmt;
    r.seq = seq_;
    r.conditional = cond_depth_ > 0;
    r.inner_loops = loops_;
    if (e.kind == fir::ExprKind::VarRef) {
      if (is_array(e.name)) {
        r.whole_array = true;
      } else {
        r.is_scalar = true;
      }
    } else {
      assert(e.kind == fir::ExprKind::ArrayRef);
      if (!is_array(e.name)) {
        // An "ArrayRef" whose base is not an array symbol would have been a
        // function call; sema validation rejects undeclared arrays, so treat
        // defensively as a scalar read of the name.
        r.is_scalar = true;
      }
      for (const auto& s : e.args) r.subs.push_back(s.get());
    }
    out_.refs.push_back(std::move(r));
  }

  // Record reads inside an expression tree. Array subscripts are themselves
  // reads (of the subscript arrays/scalars): T(IX(7)+I) reads IX and T.
  void reads(const fir::Expr& e, const fir::Stmt& in_stmt) {
    switch (e.kind) {
      case fir::ExprKind::VarRef:
        add_ref(e, /*is_write=*/false, in_stmt);
        return;
      case fir::ExprKind::ArrayRef:
        add_ref(e, /*is_write=*/false, in_stmt);
        for (const auto& a : e.args)
          if (a) reads(*a, in_stmt);
        return;
      default:
        for (const auto& a : e.args)
          if (a) reads(*a, in_stmt);
        return;
    }
  }

  // LHS of an assignment: the base access is a write; subscript expressions
  // are reads.
  void write_target(const fir::Expr& e, const fir::Stmt& in_stmt) {
    add_ref(e, /*is_write=*/true, in_stmt);
    if (e.kind == fir::ExprKind::ArrayRef) {
      for (const auto& a : e.args)
        if (a) reads(*a, in_stmt);
    }
  }

  void stmt(const fir::Stmt& s) {
    ++seq_;
    switch (s.kind) {
      case fir::StmtKind::Assign:
      case fir::StmtKind::TupleAssign:
        // Evaluate RHS reads first (they precede the write in execution).
        if (s.rhs) reads(*s.rhs, s);
        for (const auto& l : s.lhs)
          if (l) write_target(*l, s);
        return;
      case fir::StmtKind::Do: {
        if (s.do_lo) reads(*s.do_lo, s);
        if (s.do_hi) reads(*s.do_hi, s);
        if (s.do_step) reads(*s.do_step, s);
        InnerLoop il;
        il.var = s.do_var;
        il.lo = s.do_lo.get();
        il.hi = s.do_hi.get();
        il.step = s.do_step.get();
        loops_.push_back(il);
        body(s.body);
        loops_.pop_back();
        return;
      }
      case fir::StmtKind::If: {
        if (s.cond) reads(*s.cond, s);
        ++cond_depth_;
        body(s.body);
        body(s.else_body);
        --cond_depth_;
        return;
      }
      case fir::StmtKind::Call:
        out_.has_call = true;
        // Arguments may be written by the callee; without IPA everything the
        // call touches is opaque, so has_call alone disables the loop.
        for (const auto& a : s.args)
          if (a) reads(*a, s);
        return;
      case fir::StmtKind::Write:
        out_.has_io = true;
        for (const auto& a : s.args)
          if (a) reads(*a, s);
        return;
      case fir::StmtKind::Stop:
        out_.has_stop = true;
        return;
      case fir::StmtKind::Return:
        out_.has_return = true;
        return;
      case fir::StmtKind::Continue:
        return;
      case fir::StmtKind::TaggedRegion:
        // Tags are transparent for analysis: their body is ordinary code.
        body(s.body);
        return;
    }
  }
};

}  // namespace

LoopRefs collect_loop_refs(const fir::Stmt& loop, const sema::UnitInfo& unit) {
  LoopRefs out;
  RefCollector rc(unit, out);
  rc.body(loop.body);
  return out;
}

LoopBounds fold_bounds(const fir::Stmt& do_stmt, const sema::SemaContext& sema,
                       const std::string& unit_name) {
  LoopBounds b;
  if (do_stmt.do_lo) b.lo = sema.fold_int(unit_name, *do_stmt.do_lo);
  if (do_stmt.do_hi) b.hi = sema.fold_int(unit_name, *do_stmt.do_hi);
  // Non-unit steps keep bounds but the tester treats trip conservatively.
  if (do_stmt.do_step) {
    auto st = sema.fold_int(unit_name, *do_stmt.do_step);
    if (!st || *st != 1) return LoopBounds{};
  }
  return b;
}

}  // namespace ap::analysis
