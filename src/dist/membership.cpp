#include "dist/membership.h"

namespace ap::dist {

const char* health_name(Health h) {
  switch (h) {
    case Health::Alive: return "alive";
    case Health::Suspect: return "suspect";
    case Health::Dead: return "dead";
  }
  return "?";
}

void Membership::join(const net::WorkerInfo& info,
                      std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  Member& m = members_[info.id];
  m.info = info;
  m.health = Health::Alive;
  m.left = false;
  m.last_heartbeat = now;
  m.transport_failures = 0;
  ++joined_;
}

void Membership::heartbeat(const net::WorkerInfo& info,
                           const net::WorkerLoad& load, bool leaving,
                           std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  Member& m = members_[info.id];
  if (m.info.id.empty()) m.info = info;  // adopted: coordinator restarted
  m.load = load;
  m.last_heartbeat = now;
  m.transport_failures = 0;
  if (leaving) {
    if (!m.left) ++left_;
    m.left = true;
    return;
  }
  m.health = Health::Alive;
}

void Membership::tick(std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, m] : members_) {
    if (m.left || m.health == Health::Dead) continue;
    auto silent_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                         now - m.last_heartbeat)
                         .count();
    if (silent_ms >= opts_.dead_after_ms) {
      m.health = Health::Dead;
      ++died_;
    } else if (silent_ms >= opts_.suspect_after_ms) {
      m.health = Health::Suspect;
    }
  }
}

void Membership::note_failure(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = members_.find(id);
  if (it == members_.end()) return;
  Member& m = it->second;
  if (m.health == Health::Dead) return;
  ++m.transport_failures;
  if (m.transport_failures >= 2) {
    m.health = Health::Dead;
    ++died_;
  } else {
    m.health = Health::Suspect;
  }
}

void Membership::note_success(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = members_.find(id);
  if (it == members_.end()) return;
  it->second.transport_failures = 0;
  if (!it->second.left && it->second.health != Health::Dead)
    it->second.health = Health::Alive;
}

std::vector<net::WorkerInfo> Membership::routable() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<net::WorkerInfo> out;
  for (const auto& [id, m] : members_)
    if (!m.left && m.health != Health::Dead) out.push_back(m.info);
  return out;
}

std::vector<Membership::RoutableWorker> Membership::routable_with_load()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RoutableWorker> out;
  for (const auto& [id, m] : members_)
    if (!m.left && m.health != Health::Dead) out.push_back({m.info, m.load});
  return out;
}

std::vector<Member> Membership::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Member> out;
  out.reserve(members_.size());
  for (const auto& [id, m] : members_) out.push_back(m);
  return out;
}

uint64_t Membership::joined() const {
  std::lock_guard<std::mutex> lock(mu_);
  return joined_;
}

uint64_t Membership::left() const {
  std::lock_guard<std::mutex> lock(mu_);
  return left_;
}

uint64_t Membership::died() const {
  std::lock_guard<std::mutex> lock(mu_);
  return died_;
}

}  // namespace ap::dist
