// The fleet coordinator: a wire-protocol endpoint that owns no compiler.
//
// Clients speak the exact protocol they would speak to a single-node
// apserved; the coordinator's executor hook shards each compile/run by
// its content fingerprint (service::cache_key — the same value the cache
// tier is keyed by), ranks the routable workers with rendezvous hashing,
// and relays the request as a v3 `forward` to the best-ranked worker.
//
// Robustness, walked in ranking order:
//   - transport error mid-request: one immediate retry on a fresh
//     connection (the TCP session may simply be stale), then the worker
//     is reported to the membership state machine (first failure ->
//     Suspect, second -> Dead) and the request fails over to the next
//     worker in the ranking after a bounded exponential backoff;
//   - `overloaded` from a worker: immediate failover, no health demotion
//     (the worker is healthy, just busy);
//   - ranking exhausted: `worker_lost` when transport failures were seen
//     (safe to retry — the work was never half-applied), `overloaded`
//     when there were no routable workers at all.
//
// The control hook answers `register` and `heartbeat` on the loop thread
// and returns the current routable peer list in each response — that list
// is how workers learn about each other for the peer cache tier. A
// background tick thread ages the health state machine so silent workers
// decay alive -> suspect -> dead between heartbeats.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "dist/membership.h"
#include "net/channel.h"
#include "net/server.h"
#include "service/telemetry.h"

namespace ap::dist {

struct CoordinatorOptions {
  int port = 0;             // 0 = ephemeral
  int threads = 4;          // forwarding lanes (I/O bound, not compute)
  size_t max_queue = 256;
  int64_t request_timeout_ms = 120'000;
  int64_t drain_timeout_ms = 30'000;
  int64_t idle_timeout_ms = 300'000;
  int max_attempts = 3;         // distinct workers tried per request
  int64_t backoff_ms = 25;      // base failover backoff (doubles per hop)
  int64_t forward_timeout_ms = 120'000;  // per forwarded call
  // Load-aware routing: a worker whose last heartbeat reported
  // queue_depth + running at or above this is stably demoted behind every
  // unsaturated worker in the rendezvous ranking (cache affinity is kept
  // within each group). 0 disables the demotion.
  int64_t saturation_queue_depth = 8;
  // Flight recorder: dump the recent-event ring when a routed request
  // exceeds this (0 = never). See ServerOptions::slow_ms.
  int64_t slow_ms = 0;
  Membership::Options membership;
  service::Telemetry* telemetry = nullptr;
};

class Coordinator {
 public:
  explicit Coordinator(const CoordinatorOptions& opts);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  bool start(std::string* err);
  int port() const;
  int wake_fd() const;  // server self-pipe ('q' = graceful drain)

  void begin_drain();
  void wait();

  Membership& membership() { return membership_; }
  service::FleetStats fleet_stats() const;
  net::Server* server() { return server_.get(); }

 private:
  // One pooled, pipelined channel per worker. The entry remembers the
  // endpoint it was dialed for, so a worker re-registering at a new
  // address gets a fresh channel (the old one's counters are folded into
  // the retired totals).
  struct ChannelEntry {
    std::string host;
    int port = 0;
    std::shared_ptr<net::Channel> ch;
  };

  // Routes one admitted request. When the request is traced, appends one
  // "forward" span per attempted worker (failed attempts marked) with the
  // worker's own span subtree — carried back in its response — grafted
  // under the successful one.
  net::Response route(const net::Request& req,
                      std::vector<obs::Span>* spans);
  bool control(const net::Request& req, net::Response* resp);
  void fleet_metrics(json::Value* out) const;
  // Folds heartbeat-carried worker histogram summaries into fleet-wide
  // quantiles for `stats` responses.
  void fleet_stats_extra(json::Value* out) const;
  void tick_main();
  std::shared_ptr<net::Channel> channel_for(const net::WorkerInfo& w);
  void retire_locked(const ChannelEntry& e);  // channels_mu_ held

  CoordinatorOptions opts_;
  Membership membership_;
  std::unique_ptr<net::Server> server_;

  std::thread tick_thread_;
  std::mutex tick_mu_;
  std::condition_variable tick_cv_;
  bool tick_stop_ = false;

  mutable std::mutex channels_mu_;
  std::map<std::string, ChannelEntry> channels_;  // worker id -> channel
  uint64_t retired_connects_ = 0;
  uint64_t retired_reconnects_ = 0;
  uint64_t retired_inflight_peak_ = 0;

  std::atomic<uint64_t> forwarded_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> worker_lost_{0};
  std::atomic<uint64_t> load_steers_{0};
};

}  // namespace ap::dist
