// In-process fleet harness: one coordinator plus N workers on ephemeral
// loopback ports, each worker with its own result cache. This is the
// deployment the CLIs assemble across processes, packaged for tests and
// the fleet benchmark — same classes, same wire traffic (the loopback
// sockets are real), no process management.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dist/coordinator.h"
#include "dist/worker.h"
#include "service/cache.h"

namespace ap::dist {

struct FleetOptions {
  int workers = 2;
  int worker_threads = 2;
  size_t cache_capacity = 256;        // per-worker memory tier
  std::string cache_dir_base;          // "" = memory-only; else <base>/w<i>
  int64_t heartbeat_interval_ms = 200;
  Membership::Options membership{/*suspect_after_ms=*/1'000,
                                 /*dead_after_ms=*/3'000};
  int probe_peers = 2;
  int replicate = 1;
  int64_t request_timeout_ms = 120'000;
  service::Telemetry* telemetry = nullptr;  // coordinator's sink
};

class Fleet {
 public:
  explicit Fleet(const FleetOptions& opts) : opts_(opts) {}

  // Starts the coordinator, then every worker joined to it. False with
  // *err on the first failure (started components are drained).
  bool start(std::string* err);

  int coordinator_port() const { return coordinator_->port(); }
  Coordinator* coordinator() { return coordinator_.get(); }
  size_t size() const { return workers_.size(); }
  Worker* worker(size_t i) { return workers_[i].get(); }
  service::ResultCache* cache(size_t i) { return caches_[i].get(); }

  // Graceful whole-fleet drain: workers first (each announces `leaving`),
  // then the coordinator.
  void drain_all();

 private:
  FleetOptions opts_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<service::ResultCache>> caches_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace ap::dist
