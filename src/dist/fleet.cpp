#include "dist/fleet.h"

#include <algorithm>

namespace ap::dist {

bool Fleet::start(std::string* err) {
  CoordinatorOptions co;
  co.threads = std::max(2, opts_.workers);
  co.request_timeout_ms = opts_.request_timeout_ms;
  co.membership = opts_.membership;
  co.telemetry = opts_.telemetry;
  coordinator_ = std::make_unique<Coordinator>(co);
  if (!coordinator_->start(err)) return false;

  for (int i = 0; i < opts_.workers; ++i) {
    std::string dir;
    if (!opts_.cache_dir_base.empty())
      dir = opts_.cache_dir_base + "/w" + std::to_string(i);
    caches_.push_back(std::make_unique<service::ResultCache>(
        opts_.cache_capacity, dir));
    WorkerOptions wo;
    wo.id = "w" + std::to_string(i);
    wo.threads = opts_.worker_threads;
    wo.coordinator_port = coordinator_->port();
    wo.heartbeat_interval_ms = opts_.heartbeat_interval_ms;
    wo.probe_peers = opts_.probe_peers;
    wo.replicate = opts_.replicate;
    wo.request_timeout_ms = opts_.request_timeout_ms;
    wo.cache = caches_.back().get();
    workers_.push_back(std::make_unique<Worker>(wo));
    if (!workers_.back()->start(err)) {
      drain_all();
      return false;
    }
  }
  return true;
}

void Fleet::drain_all() {
  for (auto& w : workers_) {
    if (w) {
      w->begin_drain();
      w->wait();
    }
  }
  if (coordinator_) {
    coordinator_->begin_drain();
    coordinator_->wait();
  }
}

}  // namespace ap::dist
