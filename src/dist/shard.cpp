#include "dist/shard.h"

#include <algorithm>

namespace ap::dist {

namespace {

uint64_t fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// splitmix64 finalizer: full-avalanche mix of the combined 64-bit state.
uint64_t mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t hrw_score(uint64_t key, std::string_view worker_id) {
  return mix(key ^ mix(fnv1a(worker_id)));
}

std::vector<std::string> rank_workers(uint64_t key,
                                      std::vector<std::string> ids) {
  std::sort(ids.begin(), ids.end(),
            [key](const std::string& a, const std::string& b) {
              uint64_t sa = hrw_score(key, a), sb = hrw_score(key, b);
              if (sa != sb) return sa > sb;
              return a < b;
            });
  return ids;
}

std::vector<std::string> rank_workers_loaded(uint64_t key,
                                             std::vector<RankCandidate> cands,
                                             int64_t saturation) {
  std::sort(cands.begin(), cands.end(),
            [key](const RankCandidate& a, const RankCandidate& b) {
              uint64_t sa = hrw_score(key, a.id), sb = hrw_score(key, b.id);
              if (sa != sb) return sa > sb;
              return a.id < b.id;
            });
  if (saturation > 0) {
    std::stable_partition(
        cands.begin(), cands.end(),
        [saturation](const RankCandidate& c) { return c.load < saturation; });
  }
  std::vector<std::string> out;
  out.reserve(cands.size());
  for (auto& c : cands) out.push_back(std::move(c.id));
  return out;
}

}  // namespace ap::dist
