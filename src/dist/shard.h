// Rendezvous (highest-random-weight) sharding for the compilation fleet.
//
// Every request already has a content fingerprint — the 64-bit cache key
// over (source, annotations, options) — so routing reuses it: each worker
// id is scored against the key and candidates are ranked by descending
// score. The properties the fleet relies on:
//
//   - Stability under churn: when a worker leaves, only the keys it owned
//     remap (each key's ranking of the *surviving* workers is unchanged);
//     when a worker joins, it steals only the keys it now wins. There is
//     no ring state to rebalance and no token metadata to gossip.
//   - Failover order for free: the ranking *is* the retry order. The
//     coordinator walks it on transport failure, and a worker probes the
//     same ranking for the peer most likely to hold a key — which is
//     exactly the previous owner after a membership change.
//   - Determinism: scores depend only on (key, worker id), so every node
//     computes the same ranking from the same membership view.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ap::dist {

// The HRW score of one worker for one content key. Mixes an FNV-1a hash
// of the worker id with the key through a splitmix64 finalizer, so near-
// identical ids ("w1"/"w2") still land uniformly.
uint64_t hrw_score(uint64_t key, std::string_view worker_id);

// Worker ids ranked best-first for `key`. Ties (astronomically unlikely)
// break toward the lexicographically smaller id so every node agrees.
std::vector<std::string> rank_workers(uint64_t key,
                                      std::vector<std::string> ids);

// A ranking candidate with its last-reported load (heartbeat queue depth
// plus running jobs) for load-aware routing.
struct RankCandidate {
  std::string id;
  int64_t load = 0;
};

// Load-aware variant: the HRW ranking for `key`, with saturated workers
// (load >= saturation) stably demoted behind every unsaturated one. The
// demotion preserves HRW order within each group, so cache affinity is
// kept among equally-loaded workers and a key returns to its hash home as
// soon as that worker's queue drains. saturation <= 0 disables the
// demotion (pure HRW).
std::vector<std::string> rank_workers_loaded(uint64_t key,
                                             std::vector<RankCandidate> cands,
                                             int64_t saturation);

}  // namespace ap::dist
