#include "dist/worker.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "dist/shard.h"
#include "incr/unit_cache.h"

namespace ap::dist {

namespace {
using clock = std::chrono::steady_clock;
}

Worker::Worker(const WorkerOptions& opts) : opts_(opts) {}

Worker::~Worker() {
  if (server_) {
    begin_drain();
    wait();
  } else {
    // start() failed or never ran; stop the heartbeat thread if any.
    {
      std::lock_guard<std::mutex> lock(hb_mu_);
      hb_stop_ = true;
    }
    hb_cv_.notify_all();
    if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  }
}

bool Worker::start(std::string* err) {
  if (!opts_.cache) {
    if (err) *err = "WorkerOptions.cache is required";
    return false;
  }

  service::Scheduler::Options so;
  so.threads = opts_.threads;
  so.cache = opts_.cache;
  so.telemetry = opts_.telemetry;
  so.unit_cache = opts_.unit_cache;
  if (opts_.coordinator_port > 0) {
    so.peer_lookup = [this](uint64_t key, uint64_t trace_id,
                            obs::Span* span) {
      return peer_lookup(key, trace_id, span);
    };
    so.on_store = [this](uint64_t key, const service::CompileResult& r,
                         uint64_t trace_id) { replicate(key, r, trace_id); };
    // Unit-artifact tier: a pass-boundary miss asks the fleet before the
    // pass recomputes, and fresh snapshots replicate to the same ranked
    // peers. Hooks fire outside the cache mutex (they do network I/O).
    if (opts_.unit_cache) {
      opts_.unit_cache->set_peer_lookup(
          [this](const std::string&, uint64_t key) {
            return unit_peer_lookup(key);
          });
      opts_.unit_cache->set_store_hook(
          [this](const std::string& boundary, uint64_t key,
                 const std::string& payload) {
            unit_replicate(boundary, key, payload);
          });
    }
  }
  scheduler_ = std::make_unique<service::Scheduler>(so);

  net::ServerOptions no;
  no.port = opts_.port;
  no.threads = opts_.threads;
  no.max_queue = opts_.max_queue;
  no.request_timeout_ms = opts_.request_timeout_ms;
  no.drain_timeout_ms = opts_.drain_timeout_ms;
  no.idle_timeout_ms = opts_.idle_timeout_ms;
  no.role = "worker";
  no.scheduler = scheduler_.get();
  no.telemetry = opts_.telemetry;
  no.slow_ms = opts_.slow_ms;
  no.control = [this](const net::Request& req, net::Response* resp) {
    return control(req, resp);
  };
  no.extra_metrics = [this](json::Value* out) {
    service::PeerCacheStats ps = peer_stats();
    json::Value peer = json::Value::object();
    peer.set("probes_sent", ps.probes_sent)
        .set("probe_hits", ps.probe_hits)
        .set("fills_sent", ps.fills_sent)
        .set("fills_received", ps.fills_received)
        .set("peer_hits", ps.peer_hits)
        .set("unit_probes_sent", ps.unit_probes_sent)
        .set("unit_probe_hits", ps.unit_probe_hits)
        .set("unit_fills_sent", ps.unit_fills_sent)
        .set("unit_fills_received", ps.unit_fills_received)
        .set("unit_peer_hits", ps.unit_peer_hits);
    out->set("peer_cache", std::move(peer));
  };
  server_ = std::make_unique<net::Server>(no);
  if (!server_->start(err)) {
    server_.reset();
    return false;
  }

  id_ = !opts_.id.empty()
            ? opts_.id
            : "w-" + std::to_string(::getpid()) + "-" +
                  std::to_string(server_->port());

  if (opts_.coordinator_port > 0) {
    net::Client client;
    if (!client.connect(opts_.coordinator_host, opts_.coordinator_port, err,
                        static_cast<int>(opts_.peer_timeout_ms)))
      return false;
    net::Request req;
    req.type = net::RequestType::Register;
    req.worker.id = id_;
    req.worker.host = opts_.host;
    req.worker.port = server_->port();
    net::Response resp;
    if (!client.call(std::move(req), &resp, err)) return false;
    if (resp.status != net::Status::Ok) {
      if (err) *err = "registration rejected: " + resp.error;
      return false;
    }
    if (resp.has_peers) adopt_peers(resp.peers);
    heartbeat_thread_ = std::thread([this] { heartbeat_main(); });
  }
  return true;
}

int Worker::port() const { return server_ ? server_->port() : 0; }

int Worker::wake_fd() const { return server_ ? server_->wake_fd() : -1; }

void Worker::begin_drain() {
  // Stop heartbeating, announce the departure, then drain the server.
  {
    std::lock_guard<std::mutex> lock(hb_mu_);
    hb_stop_ = true;
  }
  hb_cv_.notify_all();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  if (announce_on_stop_.exchange(false) && opts_.coordinator_port > 0)
    send_heartbeat(/*leaving=*/true);
  if (server_) server_->begin_drain();
}

void Worker::stop_hard() {
  {
    std::lock_guard<std::mutex> lock(hb_mu_);
    hb_stop_ = true;
  }
  hb_cv_.notify_all();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  announce_on_stop_.store(false);  // crash: no leaving announcement
  if (server_) server_->begin_drain();
}

void Worker::wait() {
  if (server_) server_->wait();
  // The drain may have been triggered externally ('q' on wake_fd, the
  // SIGTERM path): the heartbeat thread is still running and no departure
  // was announced — do both now so the coordinator learns of the leave.
  {
    std::lock_guard<std::mutex> lock(hb_mu_);
    hb_stop_ = true;
  }
  hb_cv_.notify_all();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  if (announce_on_stop_.exchange(false) && opts_.coordinator_port > 0)
    send_heartbeat(/*leaving=*/true);
}

service::PeerCacheStats Worker::peer_stats() const {
  service::PeerCacheStats s;
  s.probes_sent = probes_sent_.load();
  s.probe_hits = probe_hits_.load();
  s.fills_sent = fills_sent_.load();
  s.fills_received = fills_received_.load();
  s.peer_hits = peer_hits_.load();
  s.unit_probes_sent = unit_probes_sent_.load();
  s.unit_probe_hits = unit_probe_hits_.load();
  s.unit_fills_sent = unit_fills_sent_.load();
  s.unit_fills_received = unit_fills_received_.load();
  // A successful unit probe IS a unit served from the peer tier (the
  // UnitCache adopts the payload and counts the hit on its side too).
  s.unit_peer_hits = unit_probe_hits_.load();
  return s;
}

std::vector<net::WorkerInfo> Worker::peers() const {
  std::lock_guard<std::mutex> lock(peers_mu_);
  return peers_;
}

void Worker::adopt_peers(const std::vector<net::WorkerInfo>& peers) {
  std::lock_guard<std::mutex> lock(peers_mu_);
  peers_ = peers;
}

// ---------------------------------------------------------------------------
// Control plane: peer-facing cache tier
// ---------------------------------------------------------------------------

bool Worker::control(const net::Request& req, net::Response* resp) {
  switch (req.type) {
    case net::RequestType::CacheProbe: {
      uint64_t key = 0;
      if (!net::parse_key(req.key, &key)) {
        resp->status = net::Status::Error;
        resp->error = "unparseable cache key";
        return true;
      }
      if (auto hit = opts_.cache->find(key)) {
        resp->found = true;
        resp->payload = service::serialize_result(*hit);
      }
      return true;
    }
    case net::RequestType::CacheFill: {
      uint64_t key = 0;
      if (!net::parse_key(req.key, &key)) {
        resp->status = net::Status::Error;
        resp->error = "unparseable cache key";
        return true;
      }
      if (auto r = service::deserialize_result(req.payload)) {
        opts_.cache->store(key, *r);
        fills_received_.fetch_add(1);
        return true;
      }
      resp->status = net::Status::Error;
      resp->error = "undecodable cache_fill payload";
      return true;
    }
    case net::RequestType::UnitProbe: {
      uint64_t key = 0;
      if (!net::parse_key(req.key, &key)) {
        resp->status = net::Status::Error;
        resp->error = "unparseable unit key";
        return true;
      }
      // Local tiers only (peek): answering a probe must never recurse
      // into this worker's own peer hook.
      if (opts_.unit_cache) {
        if (auto payload = opts_.unit_cache->peek(key)) {
          resp->found = true;
          resp->payload = std::move(*payload);
        }
      }
      return true;
    }
    case net::RequestType::UnitFill: {
      uint64_t key = 0;
      if (!net::parse_key(req.key, &key)) {
        resp->status = net::Status::Error;
        resp->error = "unparseable unit key";
        return true;
      }
      if (req.boundary.empty()) {
        resp->status = net::Status::Error;
        resp->error = "unit_fill requires a \"boundary\"";
        return true;
      }
      // The payload is opaque here — only the snapshotting pass that
      // owns the boundary can validate it, and a bad payload is caught
      // at restore time (the unit just recomputes).
      if (opts_.unit_cache) {
        opts_.unit_cache->adopt(req.boundary, key, req.payload);
        unit_fills_received_.fetch_add(1);
      }
      return true;
    }
    default:
      return false;  // register/heartbeat belong to the coordinator
  }
}

// Peers ranked best-first for `key`, excluding this worker.
static std::vector<net::WorkerInfo> ranked_peers(
    const std::vector<net::WorkerInfo>& peers, const std::string& self,
    uint64_t key) {
  std::vector<std::string> ids;
  for (const auto& p : peers)
    if (p.id != self) ids.push_back(p.id);
  ids = rank_workers(key, std::move(ids));
  std::vector<net::WorkerInfo> out;
  for (const auto& id : ids)
    for (const auto& p : peers)
      if (p.id == id) out.push_back(p);
  return out;
}

std::optional<service::CompileResult> Worker::peer_lookup(uint64_t key,
                                                          uint64_t trace_id,
                                                          obs::Span* span) {
  auto candidates = ranked_peers(peers(), id_, key);
  int budget = std::max(0, opts_.probe_peers);
  for (const auto& peer : candidates) {
    if (budget-- <= 0) break;
    auto t0 = clock::now();
    auto probe_span = [&](const char* outcome) {
      if (span)
        span->children.push_back(
            {"peer:probe", peer.id + " " + outcome,
             std::chrono::duration<double, std::milli>(clock::now() - t0)
                 .count(),
             {}});
    };
    net::Client client;
    std::string err;
    if (!client.connect(peer.host.empty() ? "127.0.0.1" : peer.host,
                        peer.port, &err,
                        static_cast<int>(opts_.peer_timeout_ms))) {
      probe_span("unreachable");
      continue;
    }
    net::Request req;
    req.type = net::RequestType::CacheProbe;
    req.key = net::format_key(key);
    req.trace_id = trace_id;
    net::Response resp;
    probes_sent_.fetch_add(1);
    if (!client.call(std::move(req), &resp, &err)) {
      probe_span("unreachable");
      continue;
    }
    if (resp.status != net::Status::Ok || !resp.found) {
      probe_span("miss");
      continue;
    }
    if (auto r = service::deserialize_result(resp.payload)) {
      probe_hits_.fetch_add(1);
      peer_hits_.fetch_add(1);
      probe_span("hit");
      return r;
    }
    probe_span("miss");
  }
  return std::nullopt;
}

void Worker::replicate(uint64_t key, const service::CompileResult& r,
                       uint64_t trace_id) {
  if (opts_.replicate <= 0) return;
  auto candidates = ranked_peers(peers(), id_, key);
  if (candidates.empty()) return;
  std::string payload = service::serialize_result(r);
  int budget = opts_.replicate;
  for (const auto& peer : candidates) {
    if (budget-- <= 0) break;
    net::Client client;
    std::string err;
    if (!client.connect(peer.host.empty() ? "127.0.0.1" : peer.host,
                        peer.port, &err,
                        static_cast<int>(opts_.peer_timeout_ms)))
      continue;
    net::Request req;
    req.type = net::RequestType::CacheFill;
    req.key = net::format_key(key);
    req.payload = payload;
    req.trace_id = trace_id;
    net::Response resp;
    if (client.call(std::move(req), &resp, &err) &&
        resp.status == net::Status::Ok)
      fills_sent_.fetch_add(1);
  }
}

std::optional<std::string> Worker::unit_peer_lookup(uint64_t key) {
  // Same rendezvous ranking as whole-result probes: the unit keyspace is
  // shared fleet-wide, so the most likely holder of a key is the worker
  // that owns (or recently owned) its shard.
  auto candidates = ranked_peers(peers(), id_, key);
  int budget = std::max(0, opts_.probe_peers);
  for (const auto& peer : candidates) {
    if (budget-- <= 0) break;
    net::Client client;
    std::string err;
    if (!client.connect(peer.host.empty() ? "127.0.0.1" : peer.host,
                        peer.port, &err,
                        static_cast<int>(opts_.peer_timeout_ms)))
      continue;
    net::Request req;
    req.type = net::RequestType::UnitProbe;
    req.key = net::format_key(key);
    net::Response resp;
    unit_probes_sent_.fetch_add(1);
    if (!client.call(std::move(req), &resp, &err)) continue;
    if (resp.status != net::Status::Ok || !resp.found) continue;
    unit_probe_hits_.fetch_add(1);
    return std::move(resp.payload);
  }
  return std::nullopt;
}

void Worker::unit_replicate(const std::string& boundary, uint64_t key,
                            const std::string& payload) {
  if (opts_.replicate <= 0) return;
  auto candidates = ranked_peers(peers(), id_, key);
  int budget = opts_.replicate;
  for (const auto& peer : candidates) {
    if (budget-- <= 0) break;
    net::Client client;
    std::string err;
    if (!client.connect(peer.host.empty() ? "127.0.0.1" : peer.host,
                        peer.port, &err,
                        static_cast<int>(opts_.peer_timeout_ms)))
      continue;
    net::Request req;
    req.type = net::RequestType::UnitFill;
    req.key = net::format_key(key);
    req.payload = payload;
    req.boundary = boundary;
    net::Response resp;
    if (client.call(std::move(req), &resp, &err) &&
        resp.status == net::Status::Ok)
      unit_fills_sent_.fetch_add(1);
  }
}

// ---------------------------------------------------------------------------
// Heartbeats
// ---------------------------------------------------------------------------

bool Worker::send_heartbeat(bool leaving) {
  net::Client client;
  std::string err;
  if (!client.connect(opts_.coordinator_host, opts_.coordinator_port, &err,
                      static_cast<int>(opts_.peer_timeout_ms)))
    return false;
  net::Request req;
  req.type = net::RequestType::Heartbeat;
  req.worker.id = id_;
  req.worker.host = opts_.host;
  req.worker.port = server_->port();
  req.leaving = leaving;
  req.load.queue_depth = server_->queue_depth();
  req.load.running = server_->jobs_running();
  service::CacheStats cs = opts_.cache->stats();
  req.load.cache_entries = opts_.cache->memory_entries();
  req.load.cache_hits = cs.hits();
  req.load.cache_misses = cs.misses;
  req.load.peer_hits = peer_hits_.load();
  // Latency summaries ride each heartbeat; the coordinator merges them
  // bucket-wise into fleet-wide quantiles.
  req.load.hist = obs::encode_histogram_set(server_->histogram_snapshots());
  net::Response resp;
  if (!client.call(std::move(req), &resp, &err)) return false;
  if (resp.status != net::Status::Ok) return false;
  if (!leaving && resp.has_peers) adopt_peers(resp.peers);
  return true;
}

void Worker::heartbeat_main() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(hb_mu_);
      hb_cv_.wait_for(lock,
                      std::chrono::milliseconds(opts_.heartbeat_interval_ms),
                      [&] { return hb_stop_; });
      if (hb_stop_) return;
    }
    send_heartbeat(/*leaving=*/false);  // failures retry next tick
  }
}

}  // namespace ap::dist
