// A fleet worker: a full apserved serving core (scheduler + cache +
// wire server) that joins a coordinator and participates in the
// distributed cache tier.
//
// Joining: start() registers with the coordinator and spawns a heartbeat
// thread that reports load + cache counters every heartbeat_interval_ms.
// Every register/heartbeat response refreshes this worker's view of its
// routable peers, so the peer list needs no separate gossip.
//
// Peer cache tier: the scheduler's peer_lookup hook fires on a local
// cache miss *before* compiling — the worker probes peers in rendezvous
// order for the key (the most likely holder first: after a membership
// change the previous owner ranks directly behind the new one) with
// `cache_probe`; a hit is deserialized, adopted into the local cache, and
// reported as cache_hit + peer_hit. The on_store hook fires after a
// fresh compile — the result is replicated with `cache_fill` to the next
// `replicate` peers in the same ranking, so the natural failover targets
// are warm before they are ever asked.
//
// Unit-artifact tier (wire v6): when a UnitCache is attached, the same
// pattern runs one level down. A unit whose pass-boundary key misses both
// local tiers is probed from peers with `unit_probe` before the pass
// recomputes it, and fresh unit snapshots are pushed with `unit_fill` —
// so a late-joining or resharded worker resumes apps mid-pipeline from
// artifacts its peers already computed, without ever holding the
// whole-request result.
//
// Serving: the worker accepts coordinator-wrapped `forward` requests and
// plain compile/run (it remains a valid single-node endpoint), and
// answers `cache_probe`/`cache_fill` from peers on the loop thread
// (cache lookups only — never a compile).
//
// Departure: begin_drain() announces `leaving` in a final heartbeat and
// drains the server (graceful — the coordinator stops routing here
// immediately). stop_hard() skips the announcement, simulating a crash:
// the coordinator discovers it through transport failures and the health
// state machine.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "service/cache.h"
#include "service/scheduler.h"
#include "service/telemetry.h"

namespace ap::dist {

struct WorkerOptions {
  std::string id;                // "" = derived from pid + port after bind
  std::string host = "127.0.0.1";
  int port = 0;                  // 0 = ephemeral
  int threads = 2;               // compile lanes
  size_t max_queue = 256;
  int64_t request_timeout_ms = 30'000;
  int64_t drain_timeout_ms = 30'000;
  int64_t idle_timeout_ms = 300'000;
  std::string coordinator_host = "127.0.0.1";
  int coordinator_port = 0;      // 0 = standalone (no join, no peers)
  int64_t heartbeat_interval_ms = 500;
  int64_t peer_timeout_ms = 2'000;  // per probe/fill/heartbeat call
  int probe_peers = 2;           // peers probed per local miss
  int replicate = 1;             // peers filled per fresh compile
  // Flight recorder: dump the recent-event ring when a served request
  // exceeds this (0 = never). See ServerOptions::slow_ms.
  int64_t slow_ms = 0;
  service::ResultCache* cache = nullptr;     // required
  service::Telemetry* telemetry = nullptr;   // optional
  incr::UnitCache* unit_cache = nullptr;     // optional incremental tier
};

class Worker {
 public:
  explicit Worker(const WorkerOptions& opts);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  // Binds and serves; registers with the coordinator (when configured)
  // and starts heartbeating. False with *err when the bind or the
  // initial registration fails.
  bool start(std::string* err);

  int port() const;
  const std::string& id() const { return id_; }
  int wake_fd() const;  // server self-pipe: SIGTERM hook ('q' = drain)

  // Graceful: announce `leaving`, then drain and stop.
  void begin_drain();
  // Crash simulation (tests/CI): stop serving without telling anyone.
  void stop_hard();
  // Wait for the server to finish draining (after begin_drain/stop_hard
  // or an external 'q' on wake_fd()).
  void wait();

  service::PeerCacheStats peer_stats() const;
  service::Scheduler* scheduler() { return scheduler_.get(); }
  net::Server* server() { return server_.get(); }

  // This worker's current peer view (test introspection).
  std::vector<net::WorkerInfo> peers() const;

 private:
  bool control(const net::Request& req, net::Response* resp);
  // Probes ride the originating request's trace context: `trace_id` is
  // stamped on the wire (0 = untraced) so the peer's flight recorder
  // correlates, and a non-null `span` collects one "peer:probe" child per
  // peer tried (detail: peer id + hit/miss/unreachable).
  std::optional<service::CompileResult> peer_lookup(uint64_t key,
                                                    uint64_t trace_id,
                                                    obs::Span* span);
  void replicate(uint64_t key, const service::CompileResult& r,
                 uint64_t trace_id);
  // Unit-artifact hooks (installed on the attached UnitCache): probe the
  // ranked peers for one pass-boundary artifact / push a fresh one.
  std::optional<std::string> unit_peer_lookup(uint64_t key);
  void unit_replicate(const std::string& boundary, uint64_t key,
                      const std::string& payload);
  void heartbeat_main();
  bool send_heartbeat(bool leaving);
  void adopt_peers(const std::vector<net::WorkerInfo>& peers);

  WorkerOptions opts_;
  std::string id_;
  std::unique_ptr<service::Scheduler> scheduler_;
  std::unique_ptr<net::Server> server_;

  std::thread heartbeat_thread_;
  std::mutex hb_mu_;
  std::condition_variable hb_cv_;
  bool hb_stop_ = false;

  mutable std::mutex peers_mu_;
  std::vector<net::WorkerInfo> peers_;

  // Whether a graceful `leaving` heartbeat is still owed on stop (cleared
  // by begin_drain after announcing, by stop_hard to simulate a crash).
  std::atomic<bool> announce_on_stop_{true};

  std::atomic<uint64_t> probes_sent_{0};
  std::atomic<uint64_t> probe_hits_{0};
  std::atomic<uint64_t> fills_sent_{0};
  std::atomic<uint64_t> fills_received_{0};
  std::atomic<uint64_t> peer_hits_{0};
  std::atomic<uint64_t> unit_probes_sent_{0};
  std::atomic<uint64_t> unit_probe_hits_{0};
  std::atomic<uint64_t> unit_fills_sent_{0};
  std::atomic<uint64_t> unit_fills_received_{0};
};

}  // namespace ap::dist
