#include "dist/coordinator.h"

#include <algorithm>
#include <chrono>

#include "dist/shard.h"
#include "net/client.h"
#include "obs/histogram.h"
#include "service/cache.h"

namespace ap::dist {

namespace {

using clock = std::chrono::steady_clock;

double ms_since(clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(clock::now() - t0).count();
}

// Routing fingerprint: the content cache key for a single compile/run; a
// batch hashes its items' keys together (FNV-style fold), so identical
// batches route identically and share a worker's warm cache.
uint64_t route_key(const net::Request& req) {
  net::RequestType effective =
      req.type == net::RequestType::Forward ? req.inner : req.type;
  if (effective == net::RequestType::CompileBatch) {
    uint64_t key = 1469598103934665603ull;
    for (const auto& item : req.batch) {
      uint64_t k =
          service::cache_key(item.source, item.annotations, item.options);
      key = (key ^ k) * 1099511628211ull;
    }
    return key;
  }
  return service::cache_key(req.source, req.annotations, req.options);
}

}  // namespace

Coordinator::Coordinator(const CoordinatorOptions& opts)
    : opts_(opts), membership_(opts.membership) {
  if (opts_.max_attempts < 1) opts_.max_attempts = 1;
}

Coordinator::~Coordinator() {
  if (server_) {
    begin_drain();
    wait();
  }
}

bool Coordinator::start(std::string* err) {
  net::ServerOptions no;
  no.port = opts_.port;
  no.threads = opts_.threads;
  no.max_queue = opts_.max_queue;
  no.request_timeout_ms = opts_.request_timeout_ms;
  no.drain_timeout_ms = opts_.drain_timeout_ms;
  no.idle_timeout_ms = opts_.idle_timeout_ms;
  no.role = "coordinator";
  no.telemetry = opts_.telemetry;
  no.slow_ms = opts_.slow_ms;
  no.executor = [this](const net::Request& req,
                       std::vector<obs::Span>* spans) {
    return route(req, spans);
  };
  no.control = [this](const net::Request& req, net::Response* resp) {
    return control(req, resp);
  };
  no.extra_metrics = [this](json::Value* out) { fleet_metrics(out); };
  no.extra_stats = [this](json::Value* out) { fleet_stats_extra(out); };
  server_ = std::make_unique<net::Server>(no);
  if (!server_->start(err)) {
    server_.reset();
    return false;
  }
  tick_thread_ = std::thread([this] { tick_main(); });
  return true;
}

int Coordinator::port() const { return server_ ? server_->port() : 0; }

int Coordinator::wake_fd() const { return server_ ? server_->wake_fd() : -1; }

void Coordinator::begin_drain() {
  {
    std::lock_guard<std::mutex> lock(tick_mu_);
    tick_stop_ = true;
  }
  tick_cv_.notify_all();
  if (tick_thread_.joinable()) tick_thread_.join();
  if (server_) server_->begin_drain();
}

void Coordinator::wait() {
  if (server_) server_->wait();
  // The drain may have been triggered externally ('q' on wake_fd, the
  // SIGTERM path) — stop the tick thread here too.
  {
    std::lock_guard<std::mutex> lock(tick_mu_);
    tick_stop_ = true;
  }
  tick_cv_.notify_all();
  if (tick_thread_.joinable()) tick_thread_.join();
  if (opts_.telemetry) opts_.telemetry->record_fleet_stats(fleet_stats());
}

service::FleetStats Coordinator::fleet_stats() const {
  service::FleetStats s;
  s.forwarded = forwarded_.load();
  s.retries = retries_.load();
  s.failovers = failovers_.load();
  s.worker_lost = worker_lost_.load();
  s.workers_joined = membership_.joined();
  s.workers_left = membership_.left();
  s.workers_dead = membership_.died();
  s.load_steers = load_steers_.load();
  {
    std::lock_guard<std::mutex> lock(channels_mu_);
    s.channels_opened = retired_connects_;
    s.channel_reconnects = retired_reconnects_;
    uint64_t peak = retired_inflight_peak_;
    for (const auto& [id, e] : channels_) {
      s.channels_opened += e.ch->connects();
      s.channel_reconnects += e.ch->reconnects();
      peak = std::max(peak, e.ch->inflight_peak());
    }
    s.channel_inflight_peak = static_cast<int64_t>(peak);
  }
  return s;
}

void Coordinator::retire_locked(const ChannelEntry& e) {
  retired_connects_ += e.ch->connects();
  retired_reconnects_ += e.ch->reconnects();
  retired_inflight_peak_ = std::max(retired_inflight_peak_, e.ch->inflight_peak());
}

std::shared_ptr<net::Channel> Coordinator::channel_for(
    const net::WorkerInfo& w) {
  std::string host = w.host.empty() ? "127.0.0.1" : w.host;
  std::lock_guard<std::mutex> lock(channels_mu_);
  auto it = channels_.find(w.id);
  if (it != channels_.end()) {
    if (it->second.host == host && it->second.port == w.port)
      return it->second.ch;
    // Re-registered at a new address: the pooled channel is stale.
    retire_locked(it->second);
    channels_.erase(it);
  }
  net::ChannelOptions co;
  co.host = host;
  co.port = w.port;
  co.recv_timeout_ms = static_cast<int>(opts_.forward_timeout_ms);
  ChannelEntry e{host, w.port, std::make_shared<net::Channel>(co)};
  auto ch = e.ch;
  channels_.emplace(w.id, std::move(e));
  return ch;
}

// ---------------------------------------------------------------------------
// Routing plane (worker lanes)
// ---------------------------------------------------------------------------

net::Response Coordinator::route(const net::Request& req,
                                 std::vector<obs::Span>* spans) {
  net::Response resp;
  resp.id = req.id;

  // Shard by the content fingerprint — the same key the cache tier uses,
  // so a key's route and its cache home coincide.
  uint64_t key = route_key(req);
  std::vector<Membership::RoutableWorker> routable =
      membership_.routable_with_load();
  if (routable.empty()) {
    resp.status = net::Status::Overloaded;
    resp.error = "no workers joined the fleet";
    return resp;
  }
  // Load-aware ranking: HRW order, saturated workers (per their last
  // heartbeat) stably demoted. A route that leaves its hash home because
  // of the demotion is a steer.
  std::vector<RankCandidate> cands;
  cands.reserve(routable.size());
  for (const auto& w : routable)
    cands.push_back({w.info.id, w.load.queue_depth + w.load.running});
  std::vector<std::string> pure;
  pure.reserve(routable.size());
  for (const auto& w : routable) pure.push_back(w.info.id);
  pure = rank_workers(key, std::move(pure));
  std::vector<std::string> ids =
      rank_workers_loaded(key, std::move(cands), opts_.saturation_queue_depth);
  if (!ids.empty() && ids.front() != pure.front()) ++load_steers_;

  net::Request fwd = req;
  fwd.type = net::RequestType::Forward;
  fwd.inner = req.type;  // Compile, Run, or CompileBatch (the admission
                         // path admits only those plus Forward, which
                         // workers never resend)

  int attempts = std::min<int>(opts_.max_attempts,
                               static_cast<int>(ids.size()));
  bool transport_failure = false;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const std::string& id = ids[static_cast<size_t>(attempt)];
    const net::WorkerInfo* target = nullptr;
    for (const auto& w : routable)
      if (w.info.id == id) target = &w.info;
    if (!target) continue;

    if (attempt > 0) {
      ++failovers_;
      int64_t backoff = opts_.backoff_ms << (attempt - 1);
      if (backoff > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<int64_t>(backoff, 1'000)));
    }

    fwd.attempt = attempt;
    net::Response out;
    bool delivered = false;
    auto t_fwd = clock::now();
    // Forward over the worker's pooled, pipelined channel — lanes share
    // one connection per worker instead of dialing per request. One
    // immediate same-worker retry after a reset: a transport error often
    // means a stale session, not a dead worker.
    std::shared_ptr<net::Channel> ch = channel_for(*target);
    for (int try_ = 0; try_ < 2 && !delivered; ++try_) {
      if (try_ == 1) {
        ++retries_;
        ch->reset();
      }
      std::string err;
      net::Request copy = fwd;
      if (ch->call(std::move(copy), &out, &err)) delivered = true;
    }
    if (!delivered) {
      ch->reset();  // don't leave a poisoned stream pooled
      transport_failure = true;
      membership_.note_failure(id);
      if (spans)
        spans->push_back(
            {"forward", id + " transport_failure", ms_since(t_fwd), {}});
      continue;
    }
    membership_.note_success(id);
    if (out.status == net::Status::Overloaded) {  // busy, not sick
      if (spans)
        spans->push_back({"forward", id + " overloaded", ms_since(t_fwd), {}});
      continue;
    }
    ++forwarded_;
    if (spans) {
      // Graft the worker's span subtree (carried back in its response)
      // under this hop's forward span; the coordinator's serving core
      // roots the result, so the final tree covers every fleet hop.
      obs::Span hop{"forward", id, ms_since(t_fwd), {}};
      obs::Span sub;
      if (out.trace.is_object() && obs::span_from_json(out.trace, &sub))
        hop.children.push_back(std::move(sub));
      out.trace = json::Value();  // replaced by the coordinator's own tree
      spans->push_back(std::move(hop));
    }
    out.id = req.id;
    return out;
  }

  if (transport_failure) {
    ++worker_lost_;
    resp.status = net::Status::WorkerLost;
    resp.error = "every routable worker for this shard failed; retry";
  } else {
    resp.status = net::Status::Overloaded;
    resp.error = "all routable workers are overloaded; retry later";
  }
  return resp;
}

// ---------------------------------------------------------------------------
// Control plane (loop thread)
// ---------------------------------------------------------------------------

bool Coordinator::control(const net::Request& req, net::Response* resp) {
  switch (req.type) {
    case net::RequestType::Register: {
      membership_.join(req.worker, clock::now());
      resp->has_peers = true;
      resp->peers = membership_.routable();
      return true;
    }
    case net::RequestType::Heartbeat: {
      membership_.heartbeat(req.worker, req.load, req.leaving, clock::now());
      resp->has_peers = true;
      resp->peers = membership_.routable();
      return true;
    }
    case net::RequestType::CacheProbe: {
      // The coordinator holds no cache; probing it is a clean miss.
      resp->found = false;
      return true;
    }
    default:
      return false;  // cache_fill targets workers
  }
}

void Coordinator::fleet_metrics(json::Value* out) const {
  service::FleetStats fs = fleet_stats();
  json::Value fleet = json::Value::object();
  fleet.set("forwarded", fs.forwarded)
      .set("retries", fs.retries)
      .set("failovers", fs.failovers)
      .set("worker_lost", fs.worker_lost)
      .set("workers_joined", fs.workers_joined)
      .set("workers_left", fs.workers_left)
      .set("workers_dead", fs.workers_dead)
      .set("channels_opened", fs.channels_opened)
      .set("channel_reconnects", fs.channel_reconnects)
      .set("channel_inflight_peak", fs.channel_inflight_peak)
      .set("load_steers", fs.load_steers);
  json::Value workers = json::Value::array();
  for (const Member& m : membership_.snapshot()) {
    json::Value w = json::Value::object();
    w.set("id", m.info.id)
        .set("host", m.info.host)
        .set("port", static_cast<int64_t>(m.info.port))
        .set("health", std::string(health_name(m.health)))
        .set("left", m.left)
        .set("queue_depth", m.load.queue_depth)
        .set("running", m.load.running)
        .set("cache_entries", m.load.cache_entries)
        .set("cache_hits", m.load.cache_hits)
        .set("cache_misses", m.load.cache_misses)
        .set("peer_hits", m.load.peer_hits);
    workers.push(std::move(w));
  }
  fleet.set("workers", std::move(workers));
  out->set("fleet", std::move(fleet));
}

void Coordinator::fleet_stats_extra(json::Value* out) const {
  // Fold each worker's heartbeat-carried histogram bundle bucket-wise
  // into fleet-wide quantiles. Merge is associative and commutative, so
  // the fold order (and heartbeat arrival order) is irrelevant.
  std::vector<std::pair<std::string, obs::HistogramSnapshot>> merged;
  auto slot = [&](const std::string& name) -> obs::HistogramSnapshot* {
    for (auto& [n, s] : merged)
      if (n == name) return &s;
    merged.emplace_back(name, obs::HistogramSnapshot{});
    return &merged.back().second;
  };
  int64_t reporting = 0;
  for (const Member& m : membership_.snapshot()) {
    if (m.load.hist.empty()) continue;
    std::vector<std::pair<std::string, obs::HistogramSnapshot>> set;
    if (!obs::decode_histogram_set(m.load.hist, &set)) continue;
    ++reporting;
    for (auto& [name, snap] : set) slot(name)->merge(snap);
  }
  json::Value fh = json::Value::object();
  fh.set("workers_reporting", reporting);
  for (auto& [name, snap] : merged) fh.set(name, snap.summary_json());
  out->set("fleet_hist", std::move(fh));
}

void Coordinator::tick_main() {
  // Age the health state machine at a fraction of the suspect window so
  // transitions land promptly between heartbeats.
  int64_t interval =
      std::max<int64_t>(opts_.membership.suspect_after_ms / 4, 50);
  while (true) {
    {
      std::unique_lock<std::mutex> lock(tick_mu_);
      tick_cv_.wait_for(lock, std::chrono::milliseconds(interval),
                        [&] { return tick_stop_; });
      if (tick_stop_) return;
    }
    membership_.tick(clock::now());
  }
}

}  // namespace ap::dist
