#include "dist/coordinator.h"

#include <algorithm>
#include <chrono>

#include "dist/shard.h"
#include "net/client.h"
#include "service/cache.h"

namespace ap::dist {

namespace {
using clock = std::chrono::steady_clock;
}

Coordinator::Coordinator(const CoordinatorOptions& opts)
    : opts_(opts), membership_(opts.membership) {
  if (opts_.max_attempts < 1) opts_.max_attempts = 1;
}

Coordinator::~Coordinator() {
  if (server_) {
    begin_drain();
    wait();
  }
}

bool Coordinator::start(std::string* err) {
  net::ServerOptions no;
  no.port = opts_.port;
  no.threads = opts_.threads;
  no.max_queue = opts_.max_queue;
  no.request_timeout_ms = opts_.request_timeout_ms;
  no.drain_timeout_ms = opts_.drain_timeout_ms;
  no.idle_timeout_ms = opts_.idle_timeout_ms;
  no.role = "coordinator";
  no.telemetry = opts_.telemetry;
  no.executor = [this](const net::Request& req) { return route(req); };
  no.control = [this](const net::Request& req, net::Response* resp) {
    return control(req, resp);
  };
  no.extra_metrics = [this](json::Value* out) { fleet_metrics(out); };
  server_ = std::make_unique<net::Server>(no);
  if (!server_->start(err)) {
    server_.reset();
    return false;
  }
  tick_thread_ = std::thread([this] { tick_main(); });
  return true;
}

int Coordinator::port() const { return server_ ? server_->port() : 0; }

int Coordinator::wake_fd() const { return server_ ? server_->wake_fd() : -1; }

void Coordinator::begin_drain() {
  {
    std::lock_guard<std::mutex> lock(tick_mu_);
    tick_stop_ = true;
  }
  tick_cv_.notify_all();
  if (tick_thread_.joinable()) tick_thread_.join();
  if (server_) server_->begin_drain();
}

void Coordinator::wait() {
  if (server_) server_->wait();
  // The drain may have been triggered externally ('q' on wake_fd, the
  // SIGTERM path) — stop the tick thread here too.
  {
    std::lock_guard<std::mutex> lock(tick_mu_);
    tick_stop_ = true;
  }
  tick_cv_.notify_all();
  if (tick_thread_.joinable()) tick_thread_.join();
  if (opts_.telemetry) opts_.telemetry->record_fleet_stats(fleet_stats());
}

service::FleetStats Coordinator::fleet_stats() const {
  service::FleetStats s;
  s.forwarded = forwarded_.load();
  s.retries = retries_.load();
  s.failovers = failovers_.load();
  s.worker_lost = worker_lost_.load();
  s.workers_joined = membership_.joined();
  s.workers_left = membership_.left();
  s.workers_dead = membership_.died();
  return s;
}

// ---------------------------------------------------------------------------
// Routing plane (worker lanes)
// ---------------------------------------------------------------------------

net::Response Coordinator::route(const net::Request& req) {
  net::Response resp;
  resp.id = req.id;

  // Shard by the content fingerprint — the same key the cache tier uses,
  // so a key's route and its cache home coincide.
  uint64_t key =
      service::cache_key(req.source, req.annotations, req.options);
  std::vector<net::WorkerInfo> routable = membership_.routable();
  if (routable.empty()) {
    resp.status = net::Status::Overloaded;
    resp.error = "no workers joined the fleet";
    return resp;
  }
  std::vector<std::string> ids;
  ids.reserve(routable.size());
  for (const auto& w : routable) ids.push_back(w.id);
  ids = rank_workers(key, std::move(ids));

  net::Request fwd = req;
  fwd.type = net::RequestType::Forward;
  fwd.inner = req.type;  // Compile or Run (the admission path admits only
                         // those plus Forward, which workers never resend)

  int attempts = std::min<int>(opts_.max_attempts,
                               static_cast<int>(ids.size()));
  bool transport_failure = false;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const std::string& id = ids[static_cast<size_t>(attempt)];
    const net::WorkerInfo* target = nullptr;
    for (const auto& w : routable)
      if (w.id == id) target = &w;
    if (!target) continue;

    if (attempt > 0) {
      ++failovers_;
      int64_t backoff = opts_.backoff_ms << (attempt - 1);
      if (backoff > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<int64_t>(backoff, 1'000)));
    }

    fwd.attempt = attempt;
    net::Response out;
    bool delivered = false;
    // One immediate same-worker retry on a fresh connection: a transport
    // error often means a stale session, not a dead worker.
    for (int try_ = 0; try_ < 2 && !delivered; ++try_) {
      if (try_ == 1) ++retries_;
      net::Client client;
      std::string err;
      if (!client.connect(target->port, &err,
                          static_cast<int>(opts_.forward_timeout_ms)))
        continue;
      net::Request copy = fwd;
      if (client.call(std::move(copy), &out, &err)) delivered = true;
    }
    if (!delivered) {
      transport_failure = true;
      membership_.note_failure(id);
      continue;
    }
    membership_.note_success(id);
    if (out.status == net::Status::Overloaded) continue;  // busy, not sick
    ++forwarded_;
    out.id = req.id;
    return out;
  }

  if (transport_failure) {
    ++worker_lost_;
    resp.status = net::Status::WorkerLost;
    resp.error = "every routable worker for this shard failed; retry";
  } else {
    resp.status = net::Status::Overloaded;
    resp.error = "all routable workers are overloaded; retry later";
  }
  return resp;
}

// ---------------------------------------------------------------------------
// Control plane (loop thread)
// ---------------------------------------------------------------------------

bool Coordinator::control(const net::Request& req, net::Response* resp) {
  switch (req.type) {
    case net::RequestType::Register: {
      membership_.join(req.worker, clock::now());
      resp->has_peers = true;
      resp->peers = membership_.routable();
      return true;
    }
    case net::RequestType::Heartbeat: {
      membership_.heartbeat(req.worker, req.load, req.leaving, clock::now());
      resp->has_peers = true;
      resp->peers = membership_.routable();
      return true;
    }
    case net::RequestType::CacheProbe: {
      // The coordinator holds no cache; probing it is a clean miss.
      resp->found = false;
      return true;
    }
    default:
      return false;  // cache_fill targets workers
  }
}

void Coordinator::fleet_metrics(json::Value* out) const {
  service::FleetStats fs = fleet_stats();
  json::Value fleet = json::Value::object();
  fleet.set("forwarded", fs.forwarded)
      .set("retries", fs.retries)
      .set("failovers", fs.failovers)
      .set("worker_lost", fs.worker_lost)
      .set("workers_joined", fs.workers_joined)
      .set("workers_left", fs.workers_left)
      .set("workers_dead", fs.workers_dead);
  json::Value workers = json::Value::array();
  for (const Member& m : membership_.snapshot()) {
    json::Value w = json::Value::object();
    w.set("id", m.info.id)
        .set("host", m.info.host)
        .set("port", static_cast<int64_t>(m.info.port))
        .set("health", std::string(health_name(m.health)))
        .set("left", m.left)
        .set("queue_depth", m.load.queue_depth)
        .set("running", m.load.running)
        .set("cache_entries", m.load.cache_entries)
        .set("cache_hits", m.load.cache_hits)
        .set("cache_misses", m.load.cache_misses)
        .set("peer_hits", m.load.peer_hits);
    workers.push(std::move(w));
  }
  fleet.set("workers", std::move(workers));
  out->set("fleet", std::move(fleet));
}

void Coordinator::tick_main() {
  // Age the health state machine at a fraction of the suspect window so
  // transitions land promptly between heartbeats.
  int64_t interval =
      std::max<int64_t>(opts_.membership.suspect_after_ms / 4, 50);
  while (true) {
    {
      std::unique_lock<std::mutex> lock(tick_mu_);
      tick_cv_.wait_for(lock, std::chrono::milliseconds(interval),
                        [&] { return tick_stop_; });
      if (tick_stop_) return;
    }
    membership_.tick(clock::now());
  }
}

}  // namespace ap::dist
