// The coordinator's view of the worker fleet: who is registered, how
// healthy each worker is, and which workers are currently routable.
//
// Health is a per-worker state machine driven by two signals:
//
//   heartbeats — a worker heartbeats every heartbeat_interval_ms. tick()
//     ages workers by heartbeat recency: silent past `suspect_after_ms`
//     demotes Alive -> Suspect; past `dead_after_ms` demotes to Dead. Any
//     heartbeat (or register) revives the worker to Alive.
//   transport failures — the routing plane reports forwarding outcomes.
//     The first consecutive failure demotes to Suspect, the second to
//     Dead (a crashed worker is discovered mid-request, well before the
//     heartbeat timeout); a success revives Suspect to Alive. Dead is
//     sticky against successes — a straggling in-flight response from a
//     worker already declared dead must not resurrect it; only the worker
//     itself can, with a fresh heartbeat or re-register.
//
// Suspect workers stay routable (they rank after nothing — the hash
// ranking is health-blind; the coordinator just walks it), Dead workers
// do not. A `leaving` heartbeat marks a graceful departure: the worker is
// immediately unroutable but its record is kept so a rejoin under the
// same id is recognized.
//
// Time is always passed in (steady_clock::time_point), never sampled
// internally, so tests can drive the state machine deterministically.
// All methods are thread-safe: heartbeats arrive on the server loop
// thread while routing lanes call note_failure/note_success.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace ap::dist {

enum class Health { Alive, Suspect, Dead };
const char* health_name(Health h);

struct Member {
  net::WorkerInfo info;
  net::WorkerLoad load;       // last heartbeat's load report
  Health health = Health::Alive;
  bool left = false;          // graceful departure (leaving heartbeat)
  std::chrono::steady_clock::time_point last_heartbeat;
  int transport_failures = 0; // consecutive; reset on success/heartbeat
};

class Membership {
 public:
  struct Options {
    int64_t suspect_after_ms = 2'000;  // heartbeat silence -> Suspect
    int64_t dead_after_ms = 6'000;     // heartbeat silence -> Dead
  };

  explicit Membership(const Options& opts) : opts_(opts) {}

  // Register (or re-register: same id revives and updates the address).
  void join(const net::WorkerInfo& info,
            std::chrono::steady_clock::time_point now);

  // A heartbeat from `info.id`. Revives to Alive, refreshes the load
  // report; `leaving` marks a graceful departure instead. Unknown ids are
  // adopted (a worker may heartbeat a coordinator that restarted).
  void heartbeat(const net::WorkerInfo& info, const net::WorkerLoad& load,
                 bool leaving, std::chrono::steady_clock::time_point now);

  // Age health states by heartbeat recency.
  void tick(std::chrono::steady_clock::time_point now);

  // Routing-plane outcome reports for forwarded requests.
  void note_failure(const std::string& id);
  void note_success(const std::string& id);

  // Workers a request may be routed to (not Dead, not left), in stable
  // (id-sorted) order — rank with dist::rank_workers.
  std::vector<net::WorkerInfo> routable() const;

  // Routable workers with each one's last heartbeat load report, for
  // load-aware ranking (dist::rank_workers_loaded).
  struct RoutableWorker {
    net::WorkerInfo info;
    net::WorkerLoad load;
  };
  std::vector<RoutableWorker> routable_with_load() const;

  std::vector<Member> snapshot() const;

  // Lifetime counters for the fleet telemetry section.
  uint64_t joined() const;
  uint64_t left() const;
  uint64_t died() const;  // transitions into Dead (timeout or transport)

 private:
  Options opts_;
  mutable std::mutex mu_;
  std::map<std::string, Member> members_;  // ordered: stable snapshots
  uint64_t joined_ = 0;
  uint64_t left_ = 0;
  uint64_t died_ = 0;
};

}  // namespace ap::dist
