#include "incr/depgraph.h"

#include <functional>

#include "analysis/common_rw.h"

namespace ap::incr {

UnitDepGraph build_dep_graph(const fir::Program& prog, DepMode mode) {
  UnitDepGraph g;
  for (const auto& u : prog.units) {
    g.index.emplace(u->name, g.names.size());
    g.names.push_back(u->name);
  }
  const size_t n = g.names.size();
  g.deps.assign(n, {});

  // CALL edges: caller depends on callee. Kept separate from COMMON edges
  // because the two close differently in directed mode (see below).
  std::vector<std::set<size_t>> call_edges(n);
  std::vector<std::set<size_t>> common_edges(n);
  for (size_t i = 0; i < n; ++i) {
    fir::walk_stmts(prog.units[i]->body, [&](const fir::Stmt& s) {
      if (s.kind == fir::StmtKind::Call) {
        auto it = g.index.find(s.name);
        if (it != g.index.end() && it->second != i)
          call_edges[i].insert(it->second);
      }
      return true;
    });
  }

  // COMMON edges. Collect sharers per block first; both modes need them.
  std::map<std::string, std::vector<size_t>> sharers;
  for (size_t i = 0; i < n; ++i)
    for (const auto& cb : prog.units[i]->commons)
      sharers[cb.name].push_back(i);

  if (mode == DepMode::Bidirectional) {
    for (const auto& [block, members] : sharers)
      for (size_t a : members)
        for (size_t b : members)
          if (a != b) common_edges[a].insert(b);
  } else {
    // Directed: reader depends on writer, per member name. Falls back to
    // symmetric edges for a block whose sharers disagree on the member
    // list (positional layout coupling; name matching is meaningless).
    std::vector<analysis::CommonRW> rw(n);
    for (size_t i = 0; i < n; ++i)
      rw[i] = analysis::common_rw_summary(*prog.units[i]);

    auto block_members = [&](size_t unit, const std::string& block)
        -> const std::vector<std::string>* {
      for (const auto& cb : prog.units[unit]->commons)
        if (cb.name == block) return &cb.vars;
      return nullptr;
    };

    for (const auto& [block, members] : sharers) {
      bool layout_consistent = true;
      const std::vector<std::string>* first = block_members(members[0], block);
      for (size_t k = 1; k < members.size() && layout_consistent; ++k) {
        const std::vector<std::string>* other = block_members(members[k], block);
        if (!first || !other || *first != *other) layout_consistent = false;
      }
      if (!layout_consistent) {
        for (size_t a : members)
          for (size_t b : members)
            if (a != b) common_edges[a].insert(b);
        continue;
      }
      for (size_t reader : members) {
        auto rit = rw[reader].reads.find(block);
        if (rit == rw[reader].reads.end()) continue;
        for (size_t writer : members) {
          if (writer == reader || common_edges[reader].count(writer)) continue;
          auto wit = rw[writer].writes.find(block);
          if (wit == rw[writer].writes.end()) continue;
          bool influences = false;
          for (const auto& name : rit->second) {
            if (wit->second.count(name)) {
              influences = true;
              break;
            }
          }
          if (influences) common_edges[reader].insert(writer);
        }
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    g.deps[i] = call_edges[i];
    g.deps[i].insert(common_edges[i].begin(), common_edges[i].end());
  }

  // Closure. The two edge kinds carry different *depths* of influence:
  //
  //   CALL edges are TEXT dependence — the callee's statements end up
  //   inlined into the caller, so the caller's artifact embeds the
  //   callee's text transitively. Closed transitively in both modes.
  //
  //   COMMON edges are SUMMARY dependence — a reader's analysis consults
  //   the writer's per-unit read/write summary (analysis/common_rw.h),
  //   which is computed intraprocedurally from the writer's own text. The
  //   reader's key therefore needs the writer's own fingerprint — one hop
  //   — and NOT the writer's dependence closure. Chaining COMMON edges
  //   transitively would route every closure through the main program
  //   (which typically initialises most members and calls most units),
  //   collapsing directed mode back to the 1/|app| reuse ceiling the
  //   symmetric rule has. Bidirectional mode keeps the historical uniform
  //   transitive closure as the conservative verification baseline.
  g.closure.assign(n, {});
  if (mode == DepMode::Bidirectional) {
    for (size_t i = 0; i < n; ++i) {
      std::vector<size_t> stack{i};
      while (!stack.empty()) {
        size_t u = stack.back();
        stack.pop_back();
        if (!g.closure[i].insert(u).second) continue;
        for (size_t d : g.deps[u]) stack.push_back(d);
      }
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      // CALL-transitive closure first...
      std::vector<size_t> stack{i};
      while (!stack.empty()) {
        size_t u = stack.back();
        stack.pop_back();
        if (!g.closure[i].insert(u).second) continue;
        for (size_t d : call_edges[u]) stack.push_back(d);
      }
      // ...then one hop of COMMON writers from every inlined unit.
      std::vector<size_t> callclo(g.closure[i].begin(), g.closure[i].end());
      for (size_t u : callclo)
        g.closure[i].insert(common_edges[u].begin(), common_edges[u].end());
    }
  }
  return g;
}

std::set<std::string> invalidated_by_edit(const UnitDepGraph& g,
                                          const std::string& edited) {
  std::set<std::string> out{edited};
  auto it = g.index.find(edited);
  if (it == g.index.end()) return out;
  for (size_t i = 0; i < g.names.size(); ++i)
    if (g.closure[i].count(it->second)) out.insert(g.names[i]);
  return out;
}

}  // namespace ap::incr
