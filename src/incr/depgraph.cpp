#include "incr/depgraph.h"

#include <functional>

namespace ap::incr {

UnitDepGraph build_dep_graph(const fir::Program& prog) {
  UnitDepGraph g;
  for (const auto& u : prog.units) {
    g.index.emplace(u->name, g.names.size());
    g.names.push_back(u->name);
  }
  const size_t n = g.names.size();
  g.deps.assign(n, {});

  // CALL edges: caller depends on callee.
  for (size_t i = 0; i < n; ++i) {
    fir::walk_stmts(prog.units[i]->body, [&](const fir::Stmt& s) {
      if (s.kind == fir::StmtKind::Call) {
        auto it = g.index.find(s.name);
        if (it != g.index.end() && it->second != i) g.deps[i].insert(it->second);
      }
      return true;
    });
  }

  // COMMON edges: every pair of units declaring the same block depends on
  // each other (shared-layout coupling is symmetric).
  std::map<std::string, std::vector<size_t>> sharers;
  for (size_t i = 0; i < n; ++i)
    for (const auto& cb : prog.units[i]->commons)
      sharers[cb.name].push_back(i);
  for (const auto& [block, members] : sharers)
    for (size_t a : members)
      for (size_t b : members)
        if (a != b) g.deps[a].insert(b);

  // Transitive closure (DFS per unit; graphs are small — tens of units).
  g.closure.assign(n, {});
  for (size_t i = 0; i < n; ++i) {
    std::vector<size_t> stack{i};
    while (!stack.empty()) {
      size_t u = stack.back();
      stack.pop_back();
      if (!g.closure[i].insert(u).second) continue;
      for (size_t d : g.deps[u]) stack.push_back(d);
    }
  }
  return g;
}

std::set<std::string> invalidated_by_edit(const UnitDepGraph& g,
                                          const std::string& edited) {
  std::set<std::string> out{edited};
  auto it = g.index.find(edited);
  if (it == g.index.end()) return out;
  for (size_t i = 0; i < g.names.size(); ++i)
    if (g.closure[i].count(it->second)) out.insert(g.names[i]);
  return out;
}

}  // namespace ap::incr
