// Exact serializer for one fir::ProgramUnit: the payload of the
// `normalize` pass-boundary artifact (incr/artifacts.h).
//
// Unlike the whole-request tier, which round-trips programs through
// fir::unparse + reparse, a pass-boundary snapshot must reproduce the
// mid-pipeline AST EXACTLY — reparsing would renumber origin_ids, lose
// source locations and annot_imported flags, and reject mid-pipeline
// constructs (TaggedRegion bodies, unknown()/unique() operators) that are
// only legal inside the annotation window. This serializer therefore
// walks the AST directly and restores every semantic field bit-for-bit:
// statement and expression kinds, literals (doubles as hexfloat),
// declarations, COMMON blocks, OMP metadata, origin/tag ids and source
// locations.
//
// The format is a flat space-separated token stream with length-prefixed
// strings — hand-rolled append/scan, no iostreams — because restore speed
// is the whole point: resuming a unit at the normalize boundary only pays
// off while deserializing is cheaper than re-running normalization.
//
// deserialize_unit returns nullopt on any malformed input (truncated
// stream, unknown kind byte, trailing garbage); callers fall back to
// recomputing — correctness never rests on the restore.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "fir/ast.h"

namespace ap::incr {

std::string serialize_unit(const fir::ProgramUnit& unit);
std::optional<std::unique_ptr<fir::ProgramUnit>> deserialize_unit(
    std::string_view text);

}  // namespace ap::incr
