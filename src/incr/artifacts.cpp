#include "incr/artifacts.h"

#include "incr/unit_cache.h"
#include "support/fnv.h"

namespace ap::incr {

uint64_t PassArtifacts::full_key(std::string_view pass_name,
                                 uint64_t prefix_fp, const PlanEntry& entry,
                                 uint64_t opts_hash) const {
  uint64_t h = entry.key;
  h = fnv_u64(h, opts_hash);
  h = fnv_u64(h, prefix_fp);
  h = fnv1a(h, pass_name);
  return h;
}

pm::ArtifactProbe PassArtifacts::find_unit(std::string_view pass_name,
                                           uint64_t prefix_fp,
                                           const std::string& unit_name) {
  pm::ArtifactProbe probe;
  if (!cache_) return probe;
  auto bit = boundaries_.find(pass_name);
  if (bit == boundaries_.end()) return probe;
  probe.participating = true;

  const PlanEntry* entry = plan_.usable ? plan_.find(unit_name) : nullptr;
  if (!entry) return probe;  // unusable plan: every unit is a plain miss

  uint64_t key = full_key(pass_name, prefix_fp, *entry, bit->second);
  UnitFindResult r = cache_->find(bit->first, key, entry->own_fp);
  probe.invalidated = r.invalidated;
  probe.payload = std::move(r.payload);
  switch (r.tier) {
    case UnitTier::None:
      probe.tier = pm::ArtifactTier::None;
      break;
    case UnitTier::Memory:
      probe.tier = pm::ArtifactTier::Memory;
      break;
    case UnitTier::Disk:
      probe.tier = pm::ArtifactTier::Disk;
      break;
    case UnitTier::Peer:
      probe.tier = pm::ArtifactTier::Peer;
      break;
  }
  return probe;
}

void PassArtifacts::store_unit(std::string_view pass_name, uint64_t prefix_fp,
                               const std::string& unit_name,
                               const std::string& payload) {
  if (!cache_) return;
  auto bit = boundaries_.find(pass_name);
  if (bit == boundaries_.end()) return;
  const PlanEntry* entry = plan_.usable ? plan_.find(unit_name) : nullptr;
  if (!entry) return;
  uint64_t key = full_key(pass_name, prefix_fp, *entry, bit->second);
  cache_->store(bit->first, key, entry->own_fp, payload);
}

}  // namespace ap::incr
