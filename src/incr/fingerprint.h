// Per-unit front-end fingerprints for the incremental compilation cache.
//
// The source is lexed (not parsed) and the token stream split at unit
// headers (`PROGRAM`/`SUBROUTINE` at statement start, with a preceding
// `$LIBRARY` directive folded into the unit it marks). Each unit's
// fingerprint is an FNV-1a hash over its tokens — kind, spelling, literal
// values — so editing one subroutine changes exactly one fingerprint, and
// whitespace/comment-only edits change none (the lexer drops both).
//
// Annotation entries (`subroutine NAME { ... }` in the annotation DSL) are
// split the same way and folded into the fingerprint of the source unit
// they annotate; entries naming no source unit fold into a global salt
// applied to every unit (conservative: an orphan annotation edit
// invalidates everything).
//
// The split is validated downstream against the real parse (incr/plan.h):
// if the token-level unit names do not match the parsed unit names the
// plan is unusable and the pipeline simply compiles everything — the
// splitter is an accelerator, never a soundness assumption.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ap::incr {

struct UnitFingerprint {
  std::string name;  // upper-cased unit name from the header token
  uint64_t fp = 0;   // token-stream hash (annotation + global salt folded in)
};

struct SourceFingerprints {
  bool ok = false;  // false: lexing failed or no unit header found
  std::vector<UnitFingerprint> units;  // in source order
};

// Fingerprint every unit of `source`, folding `annotations` entries into
// the units they name.
SourceFingerprints fingerprint_units(std::string_view source,
                                     std::string_view annotations);

// The unit names of `source` in source order (token-level split; empty on
// lex failure). Shared by the edit-loop tooling to pick a unit to mutate.
std::vector<std::string> source_unit_names(std::string_view source);

// Returns `source` with a no-op statement (`IEDITn = n`, n = salt) inserted
// before the END line of `unit_name` — a deterministic "developer edited
// this subroutine" mutation for tests, benches, and `apclient --edit-loop`.
// Returns the input unchanged when the unit or its END is not found.
std::string mutate_unit(std::string_view source, std::string_view unit_name,
                        int salt);

}  // namespace ap::incr
