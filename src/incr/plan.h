// The incremental plan for one compile request: a closure fingerprint per
// unit.
//
//   key(U) = FNV( kUnitCacheFormatVersion,
//                 U's own name,
//                 (name, fingerprint) of every unit in closure(U),
//                 sorted by name )
//
// where closure(U) is U's transitive CALL/COMMON dependence closure over a
// fresh parse of the ORIGINAL source (incr/depgraph.h — directed COMMON
// edges by default), and the fingerprints are the token-stream hashes of
// incr/fingerprint.h (own annotations folded in). Editing unit V therefore
// changes the keys of exactly V and its transitive dependents — the
// dependence-aware invalidation rule is purely structural, with nothing to
// expire.
//
// The key deliberately covers CONTENT only. The per-boundary artifact
// layer (incr/artifacts.h) folds in everything else that scopes a cached
// payload — the pass name, the pass-sequence prefix fingerprint, and the
// boundary's semantic option hash — so one plan serves every snapshotting
// pass in the pipeline.
//
// The plan is built from (source, annotations) alone, before any
// transformation, and consulted by name at snapshot time: the post-inline
// program's units are a subset of the source units (inlining and dead-unit
// elimination only remove or rewrite-in-place), and a post-inline unit's
// content is a function of its pre-inline closure (the inliners' fresh
// name and tag counters are per-unit deterministic for exactly this
// reason).
//
// When the token-level split disagrees with the real parse (defensive;
// e.g. a variable shadowing a unit-header keyword), the plan is unusable
// and the pipeline compiles every unit — slower, never wrong.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "incr/depgraph.h"

namespace ap::incr {

struct PlanEntry {
  uint64_t key = 0;     // dependence-closure content hash
  uint64_t own_fp = 0;  // the unit's own fingerprint (miss classification)
};

struct IncrPlan {
  bool usable = false;
  std::map<std::string, PlanEntry> entries;  // by unit name

  const PlanEntry* find(const std::string& name) const {
    auto it = entries.find(name);
    return it == entries.end() ? nullptr : &it->second;
  }
};

// Builds the plan over closure(U) per `mode`. Directed mode shrinks
// closures on read-only COMMON sharers; Bidirectional reproduces the
// historical symmetric rule (verification mode — results are bit-identical
// either way, only hit rates differ).
IncrPlan make_plan(std::string_view source, std::string_view annotations,
                   DepMode mode = DepMode::Directed);

}  // namespace ap::incr
