// The incremental plan for one compile request: a cache key per unit.
//
//   key(U) = FNV( kUnitCacheFormatVersion,
//                 opts_hash,                         — every semantic option
//                 (name, fingerprint) of every unit in closure(U),
//                 sorted by name )
//
// where closure(U) is U's transitive CALL/COMMON dependence closure over a
// fresh parse of the ORIGINAL source (incr/depgraph.h), and the
// fingerprints are the token-stream hashes of incr/fingerprint.h (own
// annotations folded in). Editing unit V therefore changes the keys of
// exactly V and its transitive dependents — the dependence-aware
// invalidation rule is purely structural, with nothing to expire.
//
// The plan is built from (source, annotations, opts_hash) alone, before
// any transformation, and consulted by name at parallelize time: the
// post-inline program's units are a subset of the source units (inlining
// and dead-unit elimination only remove or rewrite-in-place), and a
// post-inline unit's content is a function of its pre-inline closure.
//
// When the token-level split disagrees with the real parse (defensive;
// e.g. a variable shadowing a unit-header keyword), the plan is unusable
// and the pipeline compiles every unit — slower, never wrong.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace ap::incr {

struct PlanEntry {
  uint64_t key = 0;     // dependence-closure content hash
  uint64_t own_fp = 0;  // the unit's own fingerprint (miss classification)
};

struct IncrPlan {
  bool usable = false;
  std::map<std::string, PlanEntry> entries;  // by unit name

  const PlanEntry* find(const std::string& name) const {
    auto it = entries.find(name);
    return it == entries.end() ? nullptr : &it->second;
  }
};

// Builds the plan. `opts_hash` must cover every PipelineOptions field that
// can change the produced result (driver::hash_pipeline_options — the same
// fields the whole-request cache key hashes).
IncrPlan make_plan(std::string_view source, std::string_view annotations,
                   uint64_t opts_hash);

}  // namespace ap::incr
