// The production pm::ArtifactStore: binds one compile request's IncrPlan
// (content-closure keys, incr/plan.h) to the process-wide UnitCache.
//
// Full key for a (pass, unit) artifact:
//
//   key = FNV( plan-entry key            — closure content hash,
//              boundary option hash      — the options that shape this
//                                          boundary's output,
//              pass-sequence prefix fp   — which passes ran before,
//              pass name )
//
// Only enrolled boundaries participate: the driver registers each
// snapshotting pass with its option hash (enroll()), so e.g. the
// normalize boundary is keyed by the inliner+normalize options while the
// parallelize boundary is keyed by the whole pipeline hash. A pass not
// enrolled — or filtered out by --snapshot-boundaries — probes as
// not-participating and the manager runs it normally with zero counters.
//
// When the plan is unusable (defensive token-split mismatch) or a unit is
// unknown to it, the probe still reports participating=true with no
// payload: every unit counts as a miss, preserving the historical
// "plan unusable → all misses" accounting, and nothing is stored.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "incr/plan.h"
#include "pm/pass.h"

namespace ap::incr {

class UnitCache;

class PassArtifacts : public pm::ArtifactStore {
 public:
  // `cache` may be null (e.g. CLI run without a cache): every probe is
  // then not-participating. The plan is copied; it is per-request state.
  PassArtifacts(IncrPlan plan, UnitCache* cache)
      : plan_(std::move(plan)), cache_(cache) {}

  // Registers `pass_name` as a snapshot boundary keyed by `opts_hash`.
  void enroll(const std::string& pass_name, uint64_t opts_hash) {
    boundaries_[pass_name] = opts_hash;
  }

  pm::ArtifactProbe find_unit(std::string_view pass_name, uint64_t prefix_fp,
                              const std::string& unit_name) override;
  void store_unit(std::string_view pass_name, uint64_t prefix_fp,
                  const std::string& unit_name,
                  const std::string& payload) override;

 private:
  // 0 when the boundary is not enrolled or the plan has no entry.
  uint64_t full_key(std::string_view pass_name, uint64_t prefix_fp,
                    const PlanEntry& entry, uint64_t opts_hash) const;

  IncrPlan plan_;
  UnitCache* cache_;
  std::map<std::string, uint64_t, std::less<>> boundaries_;  // name -> hash
};

}  // namespace ap::incr
