#include "incr/unit_cache.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/disk_budget.h"

namespace ap::incr {

namespace {

std::string hex16(uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, key);
  return buf;
}

void wr_str(std::ostream& s, const std::string& v) {
  s << v.size() << "\n" << v << "\n";
}

bool rd_str(std::istream& in, std::string& v) {
  size_t n = 0;
  if (!(in >> n)) return false;
  in.get();  // the newline terminating the length header
  v.resize(n);
  in.read(v.data(), static_cast<std::streamsize>(n));
  if (in.gcount() != static_cast<std::streamsize>(n)) return false;
  in.get();  // trailing newline
  return true;
}

}  // namespace

UnitSnapshot snapshot_unit(const fir::ProgramUnit& unit,
                           const par::ParallelizeResult& par) {
  UnitSnapshot snap;
  snap.par = par;
  size_t idx = 0;
  fir::walk_stmts(unit.body, [&](const fir::Stmt& s) {
    if (s.kind != fir::StmtKind::Do) return true;
    const fir::OmpInfo& o = s.omp;
    if (o.parallel || o.nowait || !o.privates.empty() ||
        !o.firstprivates.empty() || !o.reductions.empty())
      snap.marks.push_back({idx, o});
    snap.origin_ids.push_back(s.origin_id);
    ++idx;
    return true;
  });
  snap.do_count = idx;
  return snap;
}

bool apply_snapshot(fir::ProgramUnit& unit, UnitSnapshot& snap) {
  // First pass: collect DO pointers in pre-order (the same enumeration
  // snapshot_unit used) and check the shape matches.
  std::vector<fir::Stmt*> dos;
  fir::walk_stmts(unit.body, [&](fir::Stmt& s) {
    if (s.kind == fir::StmtKind::Do) dos.push_back(&s);
    return true;
  });
  if (dos.size() != snap.do_count) return false;
  for (const auto& m : snap.marks)
    if (m.do_index >= dos.size()) return false;

  // Remap the snapshot's verdict origin_ids onto the current parse's ids
  // (an edit elsewhere in the program can renumber every later loop).
  // Positional: the i-th pre-order DO at snapshot time is the i-th now —
  // the key guarantees identical unit content. A conflicting map (same
  // old id at two positions with different new ids) bails to recompute.
  if (snap.origin_ids.size() == dos.size()) {
    std::map<int64_t, int64_t> remap;
    for (size_t i = 0; i < dos.size(); ++i) {
      auto [it, inserted] =
          remap.emplace(snap.origin_ids[i], dos[i]->origin_id);
      if (!inserted && it->second != dos[i]->origin_id) return false;
    }
    for (auto& v : snap.par.loops) {
      auto it = remap.find(v.origin_id);
      if (it != remap.end()) v.origin_id = it->second;
    }
  } else if (!snap.origin_ids.empty()) {
    return false;
  }

  for (const auto& m : snap.marks) dos[m.do_index]->omp = m.omp;
  return true;
}

std::string serialize_snapshot(const UnitSnapshot& snap) {
  std::ostringstream s;
  s << "APUNIT " << kUnitCacheFormatVersion << "\n";
  s << "do_count " << snap.do_count << "\n";
  s << "origin_ids " << snap.origin_ids.size();
  for (int64_t id : snap.origin_ids) s << ' ' << id;
  s << "\n";
  s << "marks " << snap.marks.size() << "\n";
  for (const auto& m : snap.marks) {
    s << "mark " << m.do_index << ' ' << (m.omp.parallel ? 1 : 0) << ' '
      << (m.omp.nowait ? 1 : 0) << ' ' << m.omp.privates.size() << ' '
      << m.omp.firstprivates.size() << ' ' << m.omp.reductions.size() << "\n";
    for (const auto& v : m.omp.privates) wr_str(s, v);
    for (const auto& v : m.omp.firstprivates) wr_str(s, v);
    for (const auto& r : m.omp.reductions) {
      wr_str(s, r.op);
      wr_str(s, r.var);
    }
  }
  s << "par " << snap.par.parallelized << ' ' << snap.par.dep_tests << ' '
    << snap.par.dep_tests_unique << "\n";
  s << "loops " << snap.par.loops.size() << "\n";
  for (const auto& v : snap.par.loops) {
    s << "loop " << v.origin_id << ' ' << (v.parallel ? 1 : 0) << ' '
      << v.blockers.size() << "\n";
    wr_str(s, v.unit);
    wr_str(s, v.do_var);
    wr_str(s, v.reason);
    for (const auto& b : v.blockers) {
      s << "blocker " << static_cast<int>(b.kind) << "\n";
      wr_str(s, b.subject);
      wr_str(s, b.detail);
    }
  }
  return s.str();
}

std::optional<UnitSnapshot> deserialize_snapshot(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string tag;
  uint32_t version = 0;
  if (!(in >> tag >> version) || tag != "APUNIT" ||
      version != kUnitCacheFormatVersion)
    return std::nullopt;

  UnitSnapshot snap;
  if (!(in >> tag >> snap.do_count) || tag != "do_count") return std::nullopt;
  size_t nids = 0;
  if (!(in >> tag >> nids) || tag != "origin_ids") return std::nullopt;
  snap.origin_ids.resize(nids);
  for (auto& id : snap.origin_ids)
    if (!(in >> id)) return std::nullopt;
  size_t nmarks = 0;
  if (!(in >> tag >> nmarks) || tag != "marks") return std::nullopt;
  for (size_t i = 0; i < nmarks; ++i) {
    OmpMark m;
    int parallel = 0, nowait = 0;
    size_t npriv = 0, nfirst = 0, nred = 0;
    if (!(in >> tag >> m.do_index >> parallel >> nowait >> npriv >> nfirst >>
          nred) ||
        tag != "mark")
      return std::nullopt;
    m.omp.parallel = parallel != 0;
    m.omp.nowait = nowait != 0;
    m.omp.privates.resize(npriv);
    for (auto& v : m.omp.privates)
      if (!rd_str(in, v)) return std::nullopt;
    m.omp.firstprivates.resize(nfirst);
    for (auto& v : m.omp.firstprivates)
      if (!rd_str(in, v)) return std::nullopt;
    m.omp.reductions.resize(nred);
    for (auto& r : m.omp.reductions)
      if (!rd_str(in, r.op) || !rd_str(in, r.var)) return std::nullopt;
    snap.marks.push_back(std::move(m));
  }
  if (!(in >> tag >> snap.par.parallelized >> snap.par.dep_tests >>
        snap.par.dep_tests_unique) ||
      tag != "par")
    return std::nullopt;
  size_t nloops = 0;
  if (!(in >> tag >> nloops) || tag != "loops") return std::nullopt;
  for (size_t i = 0; i < nloops; ++i) {
    par::LoopVerdict v;
    int parallel = 0;
    size_t nblockers = 0;
    if (!(in >> tag >> v.origin_id >> parallel >> nblockers) || tag != "loop")
      return std::nullopt;
    v.parallel = parallel != 0;
    if (!rd_str(in, v.unit) || !rd_str(in, v.do_var) || !rd_str(in, v.reason))
      return std::nullopt;
    for (size_t b = 0; b < nblockers; ++b) {
      par::Blocker bl;
      int kind = 0;
      if (!(in >> tag >> kind) || tag != "blocker") return std::nullopt;
      bl.kind = static_cast<par::Blocker::Kind>(kind);
      if (!rd_str(in, bl.subject) || !rd_str(in, bl.detail))
        return std::nullopt;
      v.blockers.push_back(std::move(bl));
    }
    snap.par.loops.push_back(std::move(v));
  }
  return snap;
}

void IncrStats::add(const IncrStats& o) {
  memory_hits += o.memory_hits;
  disk_hits += o.disk_hits;
  peer_hits += o.peer_hits;
  misses += o.misses;
  invalidated_by_dep += o.invalidated_by_dep;
  stores += o.stores;
  evictions += o.evictions;
}

UnitCache::UnitCache(size_t capacity, std::string disk_dir,
                     support::DiskBudget* budget)
    : capacity_(capacity < 1 ? 1 : capacity),
      disk_dir_(std::move(disk_dir)),
      budget_(budget) {
  if (!disk_dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(disk_dir_, ec);
    if (budget_) budget_->add_dir(disk_dir_, ".apu");
  }
}

void UnitCache::set_peer_lookup(PeerLookup fn) {
  std::lock_guard<std::mutex> lock(mu_);
  peer_lookup_ = std::move(fn);
}

void UnitCache::set_store_hook(StoreHook fn) {
  std::lock_guard<std::mutex> lock(mu_);
  store_hook_ = std::move(fn);
}

std::string UnitCache::disk_path(uint64_t key) const {
  return disk_dir_ + "/" + hex16(key) + ".apu";
}

std::optional<std::string> UnitCache::probe_local_locked(
    const std::string& boundary, uint64_t key, UnitTier* tier) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_[boundary].memory_hits;
    *tier = UnitTier::Memory;
    return it->second->second;
  }
  if (!disk_dir_.empty()) {
    std::ifstream f(disk_path(key), std::ios::binary);
    if (f) {
      std::ostringstream buf;
      buf << f.rdbuf();
      std::string payload = buf.str();
      if (!payload.empty()) {
        insert_memory_locked(key, payload);
        ++stats_[boundary].disk_hits;
        *tier = UnitTier::Disk;
        return payload;
      }
    }
  }
  return std::nullopt;
}

UnitFindResult UnitCache::find(const std::string& boundary, uint64_t key,
                               uint64_t own_fp) {
  UnitFindResult res;
  std::unique_lock<std::mutex> lock(mu_);
  if (auto payload = probe_local_locked(boundary, key, &res.tier)) {
    res.payload = std::move(payload);
    return res;
  }
  PeerLookup peer = peer_lookup_;
  if (peer) {
    // Network I/O outside the mutex; other lanes keep probing meanwhile.
    lock.unlock();
    auto payload = peer(boundary, key);
    lock.lock();
    if (payload) {
      insert_memory_locked(key, *payload);
      write_disk_locked(key, *payload);
      ++stats_[boundary].peer_hits;
      res.tier = UnitTier::Peer;
      res.payload = std::move(payload);
      return res;
    }
  }
  IncrStats& st = stats_[boundary];
  ++st.misses;
  auto& by_fp = last_key_by_fp_[boundary];
  auto fp_it = by_fp.find(own_fp);
  if (fp_it != by_fp.end() && fp_it->second != key) {
    ++st.invalidated_by_dep;
    res.invalidated = true;
  }
  return res;
}

void UnitCache::store(const std::string& boundary, uint64_t key,
                      uint64_t own_fp, const std::string& payload) {
  StoreHook hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    insert_memory_locked(key, payload);
    last_key_by_fp_[boundary][own_fp] = key;
    ++stats_[boundary].stores;
    write_disk_locked(key, payload);
    hook = store_hook_;
  }
  if (hook) hook(boundary, key, payload);
}

std::optional<std::string> UnitCache::peek(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  if (!disk_dir_.empty()) {
    std::ifstream f(disk_path(key), std::ios::binary);
    if (f) {
      std::ostringstream buf;
      buf << f.rdbuf();
      std::string payload = buf.str();
      if (!payload.empty()) {
        insert_memory_locked(key, payload);
        return payload;
      }
    }
  }
  return std::nullopt;
}

void UnitCache::adopt(const std::string& boundary, uint64_t key,
                      const std::string& payload) {
  (void)boundary;  // payloads adopt into the shared keyspace
  std::lock_guard<std::mutex> lock(mu_);
  insert_memory_locked(key, payload);
  write_disk_locked(key, payload);
}

void UnitCache::write_disk_locked(uint64_t key, const std::string& payload) {
  if (disk_dir_.empty()) return;
  // Atomic publish: write a temp file, then rename over the final name,
  // so a concurrent reader (another process sharing the cache dir) never
  // sees a torn entry.
  const std::string path = disk_path(key);
  std::error_code ec;
  uint64_t old_size = std::filesystem::file_size(path, ec);
  if (ec) old_size = 0;
  const std::string tmp = path + ".tmp";
  std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
  if (!f) return;
  f << payload;
  f.close();
  std::error_code rec;
  std::filesystem::rename(tmp, path, rec);
  if (rec) {
    std::filesystem::remove(tmp, rec);
    return;
  }
  if (budget_) budget_->charge(path, old_size, payload.size());
}

void UnitCache::insert_memory_locked(uint64_t key, const std::string& payload) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = payload;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, payload);
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    // Evictions are not attributable to one boundary; account them under
    // the aggregate-only bucket.
    ++stats_[""].evictions;
  }
}

IncrStats UnitCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  IncrStats total;
  for (const auto& [boundary, st] : stats_) total.add(st);
  return total;
}

std::map<std::string, IncrStats> UnitCache::boundary_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, IncrStats> out = stats_;
  out.erase("");  // the aggregate-only eviction bucket
  return out;
}

size_t UnitCache::memory_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace ap::incr
