#include "incr/unit_cache.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace ap::incr {

namespace {

std::string hex16(uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, key);
  return buf;
}

void wr_str(std::ostream& s, const std::string& v) {
  s << v.size() << "\n" << v << "\n";
}

bool rd_str(std::istream& in, std::string& v) {
  size_t n = 0;
  if (!(in >> n)) return false;
  in.get();  // the newline terminating the length header
  v.resize(n);
  in.read(v.data(), static_cast<std::streamsize>(n));
  if (in.gcount() != static_cast<std::streamsize>(n)) return false;
  in.get();  // trailing newline
  return true;
}

}  // namespace

UnitSnapshot snapshot_unit(const fir::ProgramUnit& unit,
                           const par::ParallelizeResult& par) {
  UnitSnapshot snap;
  snap.par = par;
  size_t idx = 0;
  fir::walk_stmts(unit.body, [&](const fir::Stmt& s) {
    if (s.kind != fir::StmtKind::Do) return true;
    const fir::OmpInfo& o = s.omp;
    if (o.parallel || o.nowait || !o.privates.empty() ||
        !o.firstprivates.empty() || !o.reductions.empty())
      snap.marks.push_back({idx, o});
    ++idx;
    return true;
  });
  snap.do_count = idx;
  return snap;
}

bool apply_snapshot(fir::ProgramUnit& unit, const UnitSnapshot& snap) {
  // First pass: collect DO pointers in pre-order (the same enumeration
  // snapshot_unit used) and check the shape matches.
  std::vector<fir::Stmt*> dos;
  fir::walk_stmts(unit.body, [&](fir::Stmt& s) {
    if (s.kind == fir::StmtKind::Do) dos.push_back(&s);
    return true;
  });
  if (dos.size() != snap.do_count) return false;
  for (const auto& m : snap.marks)
    if (m.do_index >= dos.size()) return false;
  for (const auto& m : snap.marks) dos[m.do_index]->omp = m.omp;
  return true;
}

std::string serialize_snapshot(const UnitSnapshot& snap) {
  std::ostringstream s;
  s << "APUNIT " << kUnitCacheFormatVersion << "\n";
  s << "do_count " << snap.do_count << "\n";
  s << "marks " << snap.marks.size() << "\n";
  for (const auto& m : snap.marks) {
    s << "mark " << m.do_index << ' ' << (m.omp.parallel ? 1 : 0) << ' '
      << (m.omp.nowait ? 1 : 0) << ' ' << m.omp.privates.size() << ' '
      << m.omp.firstprivates.size() << ' ' << m.omp.reductions.size() << "\n";
    for (const auto& v : m.omp.privates) wr_str(s, v);
    for (const auto& v : m.omp.firstprivates) wr_str(s, v);
    for (const auto& r : m.omp.reductions) {
      wr_str(s, r.op);
      wr_str(s, r.var);
    }
  }
  s << "par " << snap.par.parallelized << ' ' << snap.par.dep_tests << ' '
    << snap.par.dep_tests_unique << "\n";
  s << "loops " << snap.par.loops.size() << "\n";
  for (const auto& v : snap.par.loops) {
    s << "loop " << v.origin_id << ' ' << (v.parallel ? 1 : 0) << ' '
      << v.blockers.size() << "\n";
    wr_str(s, v.unit);
    wr_str(s, v.do_var);
    wr_str(s, v.reason);
    for (const auto& b : v.blockers) {
      s << "blocker " << static_cast<int>(b.kind) << "\n";
      wr_str(s, b.subject);
      wr_str(s, b.detail);
    }
  }
  return s.str();
}

std::optional<UnitSnapshot> deserialize_snapshot(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string tag;
  uint32_t version = 0;
  if (!(in >> tag >> version) || tag != "APUNIT" ||
      version != kUnitCacheFormatVersion)
    return std::nullopt;

  UnitSnapshot snap;
  if (!(in >> tag >> snap.do_count) || tag != "do_count") return std::nullopt;
  size_t nmarks = 0;
  if (!(in >> tag >> nmarks) || tag != "marks") return std::nullopt;
  for (size_t i = 0; i < nmarks; ++i) {
    OmpMark m;
    int parallel = 0, nowait = 0;
    size_t npriv = 0, nfirst = 0, nred = 0;
    if (!(in >> tag >> m.do_index >> parallel >> nowait >> npriv >> nfirst >>
          nred) ||
        tag != "mark")
      return std::nullopt;
    m.omp.parallel = parallel != 0;
    m.omp.nowait = nowait != 0;
    m.omp.privates.resize(npriv);
    for (auto& v : m.omp.privates)
      if (!rd_str(in, v)) return std::nullopt;
    m.omp.firstprivates.resize(nfirst);
    for (auto& v : m.omp.firstprivates)
      if (!rd_str(in, v)) return std::nullopt;
    m.omp.reductions.resize(nred);
    for (auto& r : m.omp.reductions)
      if (!rd_str(in, r.op) || !rd_str(in, r.var)) return std::nullopt;
    snap.marks.push_back(std::move(m));
  }
  if (!(in >> tag >> snap.par.parallelized >> snap.par.dep_tests >>
        snap.par.dep_tests_unique) ||
      tag != "par")
    return std::nullopt;
  size_t nloops = 0;
  if (!(in >> tag >> nloops) || tag != "loops") return std::nullopt;
  for (size_t i = 0; i < nloops; ++i) {
    par::LoopVerdict v;
    int parallel = 0;
    size_t nblockers = 0;
    if (!(in >> tag >> v.origin_id >> parallel >> nblockers) || tag != "loop")
      return std::nullopt;
    v.parallel = parallel != 0;
    if (!rd_str(in, v.unit) || !rd_str(in, v.do_var) || !rd_str(in, v.reason))
      return std::nullopt;
    for (size_t b = 0; b < nblockers; ++b) {
      par::Blocker bl;
      int kind = 0;
      if (!(in >> tag >> kind) || tag != "blocker") return std::nullopt;
      bl.kind = static_cast<par::Blocker::Kind>(kind);
      if (!rd_str(in, bl.subject) || !rd_str(in, bl.detail))
        return std::nullopt;
      v.blockers.push_back(std::move(bl));
    }
    snap.par.loops.push_back(std::move(v));
  }
  return snap;
}

UnitCache::UnitCache(size_t capacity, std::string disk_dir)
    : capacity_(capacity < 1 ? 1 : capacity), disk_dir_(std::move(disk_dir)) {
  if (!disk_dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(disk_dir_, ec);
  }
}

std::string UnitCache::disk_path(uint64_t key) const {
  return disk_dir_ + "/" + hex16(key) + ".apu";
}

std::optional<UnitSnapshot> UnitCache::find(uint64_t key, uint64_t own_fp,
                                            bool* invalidated) {
  if (invalidated) *invalidated = false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.memory_hits;
    return it->second->second;
  }
  if (!disk_dir_.empty()) {
    std::ifstream f(disk_path(key), std::ios::binary);
    if (f) {
      std::ostringstream buf;
      buf << f.rdbuf();
      auto snap = deserialize_snapshot(buf.str());
      if (snap) {
        insert_memory_locked(key, *snap);
        ++stats_.disk_hits;
        return snap;
      }
    }
  }
  ++stats_.misses;
  auto fp_it = last_key_by_fp_.find(own_fp);
  if (fp_it != last_key_by_fp_.end() && fp_it->second != key) {
    ++stats_.invalidated_by_dep;
    if (invalidated) *invalidated = true;
  }
  return std::nullopt;
}

void UnitCache::store(uint64_t key, uint64_t own_fp, const UnitSnapshot& snap) {
  std::lock_guard<std::mutex> lock(mu_);
  insert_memory_locked(key, snap);
  last_key_by_fp_[own_fp] = key;
  ++stats_.stores;
  if (!disk_dir_.empty()) {
    // Atomic publish: write a temp file, then rename over the final name,
    // so a concurrent reader (another process sharing the cache dir) never
    // sees a torn entry.
    const std::string path = disk_path(key);
    const std::string tmp = path + ".tmp";
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (f) {
      f << serialize_snapshot(snap);
      f.close();
      std::error_code ec;
      std::filesystem::rename(tmp, path, ec);
      if (ec) std::filesystem::remove(tmp, ec);
    }
  }
}

void UnitCache::insert_memory_locked(uint64_t key, const UnitSnapshot& snap) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = snap;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, snap);
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

IncrStats UnitCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t UnitCache::memory_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace ap::incr
