// Unit dependence graph for incremental invalidation.
//
// deps(U) = direct CALL targets of U ∪ the COMMON sharers that can
// influence U. The graph is built from a parse of the ORIGINAL source
// (before any inlining): inlining only moves content from callees into
// callers, so the pre-inline transitive closure over-approximates every
// unit whose source can influence U's post-pass state.
//
// COMMON edges come in two flavours (DepMode):
//
//   Directed (default) — V -> U only when V writes a member of a shared
//     block that U reads (analysis/common_rw.h computes per-unit
//     read/write member sets). A unit that only READS a shared block
//     cannot influence its sharers, so editing it leaves their closures
//     untouched. COMMON edges are also SUMMARY dependence, not text
//     dependence: the reader consults the writer's intraprocedural
//     read/write summary, so its key needs the writer's own fingerprint —
//     one hop — and not the writer's closure. CALL edges stay transitive
//     (the callee's text is inlined into the caller). The combination is
//     what lifts DYFESM-shaped apps past the 1/|clique| reuse ceiling of
//     the symmetric rule: the main program writes most members and calls
//     most units, so a uniform transitive closure would cycle through it
//     and saturate every unit's closure. When two sharers declare a block
//     with different member lists the layout coupling is positional, name
//     matching is meaningless, and that block falls back to symmetric
//     (but still one-hop) edges among its sharers.
//
//   Bidirectional — the historical conservative rule: every pair of units
//     declaring the same block depends on each other. Kept as a
//     verification mode; the differential suite test proves both modes
//     produce bit-identical results.
//
// The invalidation rule falls out of key structure rather than explicit
// bookkeeping: a unit's cache key hashes the fingerprints of its whole
// dependence closure (incr/plan.h), so editing V changes the keys of
// exactly {U : V ∈ closure(U)} — V itself plus its transitive dependents —
// and nothing else.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "fir/ast.h"

namespace ap::incr {

enum class DepMode : uint8_t { Directed, Bidirectional };

struct UnitDepGraph {
  std::vector<std::string> names;         // unit-index order of the parse
  std::map<std::string, size_t> index;    // name -> position in `names`
  std::vector<std::set<size_t>> deps;     // direct CALL + COMMON edges
  std::vector<std::set<size_t>> closure;  // transitive deps, including self

  bool contains(const std::string& name) const { return index.count(name); }
};

UnitDepGraph build_dep_graph(const fir::Program& prog,
                             DepMode mode = DepMode::Directed);

// The units whose cached state an edit to `edited` invalidates: the edited
// unit plus every transitive dependent along CALL/COMMON edges. Returns
// just {edited} when the unit is unknown (nothing else can depend on it).
std::set<std::string> invalidated_by_edit(const UnitDepGraph& g,
                                          const std::string& edited);

}  // namespace ap::incr
