// Unit dependence graph for incremental invalidation.
//
// deps(U) = direct CALL targets of U ∪ every unit sharing a COMMON block
// with U. The graph is built from a parse of the ORIGINAL source (before
// any inlining): inlining only moves content from callees into callers, so
// the pre-inline transitive closure over-approximates every unit whose
// source can influence U's post-pass state. COMMON edges are deliberately
// conservative (bidirectional): a unit that redeclares a shared block can
// change layout-sensitive analysis in every other sharer.
//
// The invalidation rule falls out of key structure rather than explicit
// bookkeeping: a unit's cache key hashes the fingerprints of its whole
// dependence closure (incr/plan.h), so editing V changes the keys of
// exactly {U : V ∈ closure(U)} — V itself plus its transitive dependents —
// and nothing else.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "fir/ast.h"

namespace ap::incr {

struct UnitDepGraph {
  std::vector<std::string> names;         // unit-index order of the parse
  std::map<std::string, size_t> index;    // name -> position in `names`
  std::vector<std::set<size_t>> deps;     // direct CALL + COMMON edges
  std::vector<std::set<size_t>> closure;  // transitive deps, including self

  bool contains(const std::string& name) const { return index.count(name); }
};

UnitDepGraph build_dep_graph(const fir::Program& prog);

// The units whose cached state an edit to `edited` invalidates: the edited
// unit plus every transitive dependent along CALL/COMMON edges. Returns
// just {edited} when the unit is unknown (nothing else can depend on it).
std::set<std::string> invalidated_by_edit(const UnitDepGraph& g,
                                          const std::string& edited);

}  // namespace ap::incr
