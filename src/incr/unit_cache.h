// Unit-level artifact store: opaque per-unit snapshots keyed by the
// pass-boundary key the artifact layer computes (incr/artifacts.h —
// closure content hash x boundary option hash x pass-sequence prefix), one
// keyspace shared by every snapshotting pass. The cache itself never
// interprets a payload; each pass serializes and restores its own state
// ("APUNIT ..." for the parallelize boundary, "APUSER ..." for the
// normalize boundary) and correctness never rests on the restore — a
// payload that fails to apply is simply recomputed.
//
// Four tiers, probed in order:
//   memory — LRU over payload strings, bounded by entry count;
//   disk   — optional, under `<cache-dir>/units/` with one `<hex-key>.apu`
//            file per artifact (dist-clang's file_cache shape), written
//            atomically (temp + rename). When a support::DiskBudget is
//            attached, every write is charged against the shared
//            --cache-max-mb budget and can evict (or be evicted by) the
//            whole-request tier's files;
//   peer   — optional hook (set_peer_lookup): on a memory+disk miss the
//            cache asks the fleet (wire v6 unit_probe), called OUTSIDE the
//            mutex; a peer payload is adopted into memory+disk. The
//            symmetric store hook pushes fresh artifacts to peers
//            (unit_fill).
//   (recompute — the caller's job.)
//
// Entries are only ever superseded — a changed input changes the key — so
// there is no staleness.
//
// Miss classification: the cache remembers the last key stored per
// (boundary, unit fingerprint). A miss whose fingerprint was seen before
// under a different key means the unit itself is unchanged but a
// dependency changed — counted as invalidated_by_dep (the telemetry that
// proves the invalidation rule touches only the dependence closure).
// Stats are kept per boundary so telemetry can show WHERE in the pipeline
// edits resume.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "fir/ast.h"
#include "par/parallelizer.h"

namespace ap::support {
class DiskBudget;
}

namespace ap::incr {

inline constexpr uint32_t kUnitCacheFormatVersion = 2;

// ---------------------------------------------------------------------------
// The parallelize boundary's payload: OMP marks by pre-order DO index plus
// the unit's ParallelizeResult (verdicts, blockers, dependence-test
// counters) so merged diagnostics and telemetry are bit-identical to a
// cold compile.
// ---------------------------------------------------------------------------

// One DO loop's OMP metadata, addressed by pre-order DO index in the unit.
struct OmpMark {
  size_t do_index = 0;
  fir::OmpInfo omp;
};

struct UnitSnapshot {
  size_t do_count = 0;           // total DO statements (apply-time check)
  std::vector<OmpMark> marks;    // loops carrying non-default OMP state
  // origin_id of every DO in pre-order at snapshot time: apply remaps the
  // stored verdicts onto the CURRENT parse's ids so an edit elsewhere in
  // the program that renumbers loops cannot leave stale ids behind.
  std::vector<int64_t> origin_ids;
  par::ParallelizeResult par;    // this unit's verdicts + counters
};

// The OMP marks currently on `unit` (non-default OmpInfo only), with
// do_count and the pre-order origin_id list filled in.
UnitSnapshot snapshot_unit(const fir::ProgramUnit& unit,
                           const par::ParallelizeResult& par);

// Re-applies `snap`'s marks onto a freshly normalized `unit`, remapping
// the snapshot's verdict origin_ids onto the unit's current ids (see
// UnitSnapshot::origin_ids — `snap` is mutated). Returns false (leaving
// the unit untouched) when the DO shape does not match — the caller
// recomputes; correctness never rests on the apply.
bool apply_snapshot(fir::ProgramUnit& unit, UnitSnapshot& snap);

// Serialization for the disk tier (exposed for tests).
std::string serialize_snapshot(const UnitSnapshot& snap);
std::optional<UnitSnapshot> deserialize_snapshot(std::string_view text);

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

struct IncrStats {
  uint64_t memory_hits = 0;
  uint64_t disk_hits = 0;
  uint64_t peer_hits = 0;           // misses served by a fleet peer
  uint64_t misses = 0;              // includes invalidated_by_dep
  uint64_t invalidated_by_dep = 0;  // miss, own unit unchanged, dep changed
  uint64_t stores = 0;
  uint64_t evictions = 0;  // memory-tier LRU evictions
  uint64_t hits() const { return memory_hits + disk_hits + peer_hits; }
  uint64_t lookups() const { return hits() + misses; }
  void add(const IncrStats& o);
};

// Which tier satisfied a find; None = miss.
enum class UnitTier : uint8_t { None, Memory, Disk, Peer };

struct UnitFindResult {
  std::optional<std::string> payload;
  UnitTier tier = UnitTier::None;
  bool invalidated = false;  // miss; own unit unchanged, dependency changed
};

class UnitCache {
 public:
  // `capacity` bounds the memory tier (entry count, >= 1); `disk_dir`
  // enables the disk tier when non-empty (created on demand). `budget`
  // (optional, not owned) charges disk writes against a byte budget
  // shared with other tiers; the cache registers `disk_dir` with it.
  explicit UnitCache(size_t capacity = 4096, std::string disk_dir = "",
                     support::DiskBudget* budget = nullptr);

  // Fleet hooks. The lookup is called on a memory+disk miss, OUTSIDE the
  // cache mutex (it does network I/O); the store hook after every local
  // store (replication), also outside the mutex. Neither is called for
  // adopted peer payloads — no recursion.
  using PeerLookup = std::function<std::optional<std::string>(
      const std::string& boundary, uint64_t key)>;
  using StoreHook = std::function<void(const std::string& boundary,
                                       uint64_t key,
                                       const std::string& payload)>;
  void set_peer_lookup(PeerLookup fn);
  void set_store_hook(StoreHook fn);

  // Thread-safe. `boundary` is the snapshotting pass's name (stats
  // bucket); `own_fp` is the unit's own fingerprint, used only to
  // classify misses (see header comment).
  UnitFindResult find(const std::string& boundary, uint64_t key,
                      uint64_t own_fp);

  // Thread-safe. Stores under `key`; mirrors to disk when enabled, then
  // fires the store hook.
  void store(const std::string& boundary, uint64_t key, uint64_t own_fp,
             const std::string& payload);

  // Peer-serving probe (wire unit_probe): memory+disk by key, no miss
  // accounting, never consults the peer hook.
  std::optional<std::string> peek(uint64_t key);

  // Accepts a payload pushed by a peer (wire unit_fill): memory+disk, no
  // store-hook recursion, no fingerprint bookkeeping.
  void adopt(const std::string& boundary, uint64_t key,
             const std::string& payload);

  IncrStats stats() const;  // aggregate over boundaries
  std::map<std::string, IncrStats> boundary_stats() const;
  size_t memory_entries() const;
  const std::string& disk_dir() const { return disk_dir_; }

 private:
  std::string disk_path(uint64_t key) const;
  void insert_memory_locked(uint64_t key, const std::string& payload);
  void write_disk_locked(uint64_t key, const std::string& payload);
  std::optional<std::string> probe_local_locked(const std::string& boundary,
                                                uint64_t key, UnitTier* tier);

  const size_t capacity_;
  const std::string disk_dir_;
  support::DiskBudget* budget_;  // not owned; may be null

  mutable std::mutex mu_;
  std::list<std::pair<uint64_t, std::string>> lru_;  // MRU first
  std::unordered_map<uint64_t,
                     std::list<std::pair<uint64_t, std::string>>::iterator>
      index_;
  // (boundary, unit fingerprint) -> last stored key, for miss
  // classification.
  std::map<std::string, std::unordered_map<uint64_t, uint64_t>>
      last_key_by_fp_;
  std::map<std::string, IncrStats> stats_;  // by boundary
  PeerLookup peer_lookup_;
  StoreHook store_hook_;
};

}  // namespace ap::incr
