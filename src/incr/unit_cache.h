// Unit-level cache store: snapshots of a unit's post-`parallelize` state,
// keyed by the dependence-closure content hash from incr/plan.h.
//
// A snapshot is everything `parallelize` produced for one unit: the OMP
// metadata it attached to the unit's DO loops (addressed positionally by
// pre-order DO index — the post-normalize AST a hit re-applies marks to is
// byte-identical to the one the marks were collected from, because the key
// covers every input that shapes it) and the unit's ParallelizeResult
// (verdicts, blockers, dependence-test counters) so merged diagnostics and
// telemetry are bit-identical to a cold compile.
//
// Two tiers, mirroring service::ResultCache: a memory LRU bounded by entry
// count, and an optional disk tier under `<cache-dir>/units/` with one
// `<hex-key>.apu` file per unit (dist-clang's file_cache shape), written
// atomically (temp + rename) and format-versioned. Entries are only ever
// superseded — a changed input changes the key — so there is no staleness.
//
// Miss classification: the cache remembers the last key stored per unit
// fingerprint. A miss whose fingerprint was seen before under a different
// key means the unit itself is unchanged but a dependency changed — it is
// counted as invalidated_by_dep (the telemetry that proves the
// invalidation rule touches only the dependence closure).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "fir/ast.h"
#include "par/parallelizer.h"

namespace ap::incr {

inline constexpr uint32_t kUnitCacheFormatVersion = 1;

// One DO loop's OMP metadata, addressed by pre-order DO index in the unit.
struct OmpMark {
  size_t do_index = 0;
  fir::OmpInfo omp;
};

struct UnitSnapshot {
  size_t do_count = 0;           // total DO statements (apply-time check)
  std::vector<OmpMark> marks;    // loops carrying non-default OMP state
  par::ParallelizeResult par;    // this unit's verdicts + counters
};

// The OMP marks currently on `unit` (non-default OmpInfo only), with
// do_count filled in.
UnitSnapshot snapshot_unit(const fir::ProgramUnit& unit,
                           const par::ParallelizeResult& par);

// Re-applies `snap`'s marks onto a freshly normalized `unit`. Returns false
// (leaving the unit untouched) when the DO shape does not match — the
// caller recomputes; correctness never rests on the apply.
bool apply_snapshot(fir::ProgramUnit& unit, const UnitSnapshot& snap);

// Serialization for the disk tier (exposed for tests).
std::string serialize_snapshot(const UnitSnapshot& snap);
std::optional<UnitSnapshot> deserialize_snapshot(std::string_view text);

struct IncrStats {
  uint64_t memory_hits = 0;
  uint64_t disk_hits = 0;
  uint64_t misses = 0;              // includes invalidated_by_dep
  uint64_t invalidated_by_dep = 0;  // miss, own unit unchanged, dep changed
  uint64_t stores = 0;
  uint64_t evictions = 0;  // memory-tier LRU evictions
  uint64_t hits() const { return memory_hits + disk_hits; }
  uint64_t lookups() const { return hits() + misses; }
};

class UnitCache {
 public:
  // `capacity` bounds the memory tier (entry count, >= 1); `disk_dir`
  // enables the disk tier when non-empty (created on demand).
  explicit UnitCache(size_t capacity = 4096, std::string disk_dir = "");

  // Thread-safe. `own_fp` is the unit's own fingerprint, used only to
  // classify misses (see header comment); `invalidated` (optional) reports
  // that classification to the caller for per-request telemetry.
  std::optional<UnitSnapshot> find(uint64_t key, uint64_t own_fp,
                                   bool* invalidated = nullptr);

  // Thread-safe. Stores under `key`; mirrors to disk when enabled.
  void store(uint64_t key, uint64_t own_fp, const UnitSnapshot& snap);

  IncrStats stats() const;
  size_t memory_entries() const;
  const std::string& disk_dir() const { return disk_dir_; }

 private:
  std::string disk_path(uint64_t key) const;
  void insert_memory_locked(uint64_t key, const UnitSnapshot& snap);

  const size_t capacity_;
  const std::string disk_dir_;

  mutable std::mutex mu_;
  std::list<std::pair<uint64_t, UnitSnapshot>> lru_;  // MRU first
  std::unordered_map<uint64_t,
                     std::list<std::pair<uint64_t, UnitSnapshot>>::iterator>
      index_;
  std::unordered_map<uint64_t, uint64_t> last_key_by_fp_;
  IncrStats stats_;
};

}  // namespace ap::incr
