#include "incr/plan.h"

#include <algorithm>
#include <vector>

#include "fir/parser.h"
#include "incr/depgraph.h"
#include "incr/fingerprint.h"
#include "incr/unit_cache.h"
#include "support/diagnostics.h"
#include "support/fnv.h"

namespace ap::incr {

IncrPlan make_plan(std::string_view source, std::string_view annotations,
                   DepMode mode) {
  IncrPlan plan;

  SourceFingerprints fps = fingerprint_units(source, annotations);
  if (!fps.ok) return plan;

  DiagnosticEngine diags;
  auto prog = fir::parse_program(source, diags);
  if (!prog) return plan;  // the pipeline will report the parse error

  UnitDepGraph g = build_dep_graph(*prog, mode);

  // The token-level split must name exactly the parsed units, in order —
  // otherwise a fingerprint could be attributed to the wrong unit.
  if (fps.units.size() != g.names.size()) return plan;
  for (size_t i = 0; i < g.names.size(); ++i)
    if (fps.units[i].name != g.names[i]) return plan;

  for (size_t i = 0; i < g.names.size(); ++i) {
    // Sorted (name, fp) pairs over the closure: deterministic regardless of
    // unit order or traversal.
    std::vector<size_t> closure(g.closure[i].begin(), g.closure[i].end());
    std::sort(closure.begin(), closure.end(), [&](size_t a, size_t b) {
      return g.names[a] < g.names[b];
    });
    uint64_t h = kFnvOffset;
    h = fnv_u64(h, kUnitCacheFormatVersion);
    // The unit's own name first: two units sharing one dependence closure
    // (e.g. an all-to-all COMMON clique) must still key separately, or
    // their snapshots would overwrite each other under a single key.
    h = fnv1a(h, g.names[i]);
    h = fnv1a(h, std::string_view("\0", 1));
    for (size_t j : closure) {
      h = fnv1a(h, g.names[j]);
      h = fnv1a(h, std::string_view("\0", 1));
      h = fnv_u64(h, fps.units[j].fp);
    }
    plan.entries.emplace(g.names[i],
                         PlanEntry{h, fps.units[i].fp});
  }
  plan.usable = true;
  return plan;
}

}  // namespace ap::incr
