#include "incr/unit_serial.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ap::incr {

namespace {

using namespace ap::fir;

constexpr char kMagic[] = "APUSER 1 ";

// ---------------------------------------------------------------------------
// Writer: appends space-separated tokens to a growing string.
// ---------------------------------------------------------------------------

class Writer {
 public:
  std::string take() { return std::move(out_); }

  void num(int64_t v) {
    char buf[24];
    int n = std::snprintf(buf, sizeof(buf), "%" PRId64 " ", v);
    out_.append(buf, static_cast<size_t>(n));
  }
  void num(size_t v) { num(static_cast<int64_t>(v)); }
  void num(int v) { num(static_cast<int64_t>(v)); }
  void boolean(bool v) { out_.append(v ? "1 " : "0 "); }
  // %a round-trips doubles exactly through strtod.
  void real(double v) {
    char buf[48];
    int n = std::snprintf(buf, sizeof(buf), "%a ", v);
    out_.append(buf, static_cast<size_t>(n));
  }
  void str(const std::string& s) {
    num(s.size());
    out_.append(s);
    out_.push_back(' ');
  }
  void raw(const char* s) { out_.append(s); }

 private:
  std::string out_;
};

void write_loc(Writer& w, const SourceLoc& loc) {
  w.num(static_cast<int64_t>(loc.line));
  w.num(static_cast<int64_t>(loc.column));
}

void write_expr(Writer& w, const Expr* e);

void write_args(Writer& w, const std::vector<ExprPtr>& args) {
  w.num(args.size());
  for (const auto& a : args) write_expr(w, a.get());
}

// Every expression is written with a leading null flag so nullable slots
// (Section parts, DO step) and required children share one encoding.
void write_expr(Writer& w, const Expr* e) {
  if (!e) {
    w.raw("~ ");
    return;
  }
  w.num(static_cast<int>(e->kind));
  write_loc(w, e->loc);
  switch (e->kind) {
    case ExprKind::IntLit: w.num(e->int_val); break;
    case ExprKind::RealLit: w.real(e->real_val); break;
    case ExprKind::LogicalLit: w.boolean(e->logical_val); break;
    case ExprKind::StrLit: w.str(e->str_val); break;
    case ExprKind::VarRef: w.str(e->name); break;
    case ExprKind::ArrayRef:
    case ExprKind::Intrinsic:
      w.str(e->name);
      write_args(w, e->args);
      break;
    case ExprKind::Section:
    case ExprKind::Unknown:
    case ExprKind::Unique:
      write_args(w, e->args);
      break;
    case ExprKind::Unary:
      w.num(static_cast<int>(e->un_op));
      write_args(w, e->args);
      break;
    case ExprKind::Binary:
      w.num(static_cast<int>(e->bin_op));
      write_args(w, e->args);
      break;
  }
}

void write_stmts(Writer& w, const std::vector<StmtPtr>& body);

void write_stmt(Writer& w, const Stmt& s) {
  w.num(static_cast<int>(s.kind));
  write_loc(w, s.loc);
  switch (s.kind) {
    case StmtKind::Assign:
    case StmtKind::TupleAssign:
      write_args(w, s.lhs);
      write_expr(w, s.rhs.get());
      break;
    case StmtKind::Do: {
      w.str(s.do_var);
      w.num(s.origin_id);
      write_expr(w, s.do_lo.get());
      write_expr(w, s.do_hi.get());
      write_expr(w, s.do_step.get());
      w.boolean(s.omp.parallel);
      w.boolean(s.omp.nowait);
      w.num(s.omp.privates.size());
      for (const auto& v : s.omp.privates) w.str(v);
      w.num(s.omp.firstprivates.size());
      for (const auto& v : s.omp.firstprivates) w.str(v);
      w.num(s.omp.reductions.size());
      for (const auto& r : s.omp.reductions) {
        w.str(r.op);
        w.str(r.var);
      }
      write_stmts(w, s.body);
      break;
    }
    case StmtKind::If:
      write_expr(w, s.cond.get());
      write_stmts(w, s.body);
      write_stmts(w, s.else_body);
      break;
    case StmtKind::Call:
    case StmtKind::Write:
      w.str(s.name);
      write_args(w, s.args);
      break;
    case StmtKind::Stop:
      w.str(s.name);
      break;
    case StmtKind::Return:
    case StmtKind::Continue:
      break;
    case StmtKind::TaggedRegion:
      w.str(s.name);
      w.num(s.tag_id);
      write_stmts(w, s.body);
      write_args(w, s.arg_hints);
      break;
  }
}

void write_stmts(Writer& w, const std::vector<StmtPtr>& body) {
  w.num(body.size());
  for (const auto& s : body) write_stmt(w, *s);
}

// ---------------------------------------------------------------------------
// Reader: scans the same token stream; any mismatch poisons the reader.
// ---------------------------------------------------------------------------

class Reader {
 public:
  explicit Reader(std::string_view text) : p_(text.data()), end_(p_ + text.size()) {}

  bool ok() const { return ok_; }
  bool at_end() const { return p_ == end_; }
  void fail() { ok_ = false; }

  int64_t num() {
    if (!ok_) return 0;
    char* after = nullptr;
    long long v = std::strtoll(p_, &after, 10);
    if (after == p_ || after >= end_ || *after != ' ') {
      ok_ = false;
      return 0;
    }
    p_ = after + 1;
    return v;
  }
  bool boolean() { return num() != 0; }
  double real() {
    if (!ok_) return 0;
    char* after = nullptr;
    double v = std::strtod(p_, &after);
    if (after == p_ || after >= end_ || *after != ' ') {
      ok_ = false;
      return 0;
    }
    p_ = after + 1;
    return v;
  }
  std::string str() {
    int64_t n = num();
    if (!ok_ || n < 0 || end_ - p_ < n + 1 || p_[n] != ' ') {
      ok_ = false;
      return {};
    }
    std::string s(p_, static_cast<size_t>(n));
    p_ += n + 1;
    return s;
  }
  // A count used to size a container; bounded by the remaining input so a
  // corrupt header cannot trigger a huge allocation.
  size_t count() {
    int64_t n = num();
    if (n < 0 || n > end_ - p_) {
      ok_ = false;
      return 0;
    }
    return static_cast<size_t>(n);
  }
  bool null_expr() {
    if (!ok_) return true;
    if (end_ - p_ >= 2 && p_[0] == '~' && p_[1] == ' ') {
      p_ += 2;
      return true;
    }
    return false;
  }

 private:
  const char* p_;
  const char* end_;
  bool ok_ = true;
};

SourceLoc read_loc(Reader& r) {
  SourceLoc loc;
  loc.line = static_cast<uint32_t>(r.num());
  loc.column = static_cast<uint32_t>(r.num());
  return loc;
}

ExprPtr read_expr(Reader& r, int depth);

bool read_args(Reader& r, std::vector<ExprPtr>& out, int depth) {
  size_t n = r.count();
  out.reserve(n);
  for (size_t i = 0; i < n && r.ok(); ++i) out.push_back(read_expr(r, depth));
  return r.ok();
}

constexpr int kMaxDepth = 512;

ExprPtr read_expr(Reader& r, int depth) {
  if (depth > kMaxDepth) {
    r.fail();
    return nullptr;
  }
  if (r.null_expr()) return nullptr;
  int64_t kind = r.num();
  if (!r.ok() || kind < 0 || kind > static_cast<int>(ExprKind::Unique)) {
    r.fail();
    return nullptr;
  }
  auto e = std::make_unique<Expr>();
  e->kind = static_cast<ExprKind>(kind);
  e->loc = read_loc(r);
  switch (e->kind) {
    case ExprKind::IntLit: e->int_val = r.num(); break;
    case ExprKind::RealLit: e->real_val = r.real(); break;
    case ExprKind::LogicalLit: e->logical_val = r.boolean(); break;
    case ExprKind::StrLit: e->str_val = r.str(); break;
    case ExprKind::VarRef: e->name = r.str(); break;
    case ExprKind::ArrayRef:
    case ExprKind::Intrinsic:
      e->name = r.str();
      read_args(r, e->args, depth + 1);
      break;
    case ExprKind::Section:
    case ExprKind::Unknown:
    case ExprKind::Unique:
      read_args(r, e->args, depth + 1);
      break;
    case ExprKind::Unary: {
      int64_t op = r.num();
      if (op < 0 || op > static_cast<int>(UnOp::Plus)) r.fail();
      e->un_op = static_cast<UnOp>(op);
      read_args(r, e->args, depth + 1);
      break;
    }
    case ExprKind::Binary: {
      int64_t op = r.num();
      if (op < 0 || op > static_cast<int>(BinOp::Or)) r.fail();
      e->bin_op = static_cast<BinOp>(op);
      read_args(r, e->args, depth + 1);
      break;
    }
  }
  if (!r.ok()) return nullptr;
  return e;
}

bool read_stmts(Reader& r, std::vector<StmtPtr>& out, int depth);

StmtPtr read_stmt(Reader& r, int depth) {
  if (depth > kMaxDepth) {
    r.fail();
    return nullptr;
  }
  int64_t kind = r.num();
  if (!r.ok() || kind < 0 ||
      kind > static_cast<int>(StmtKind::TaggedRegion)) {
    r.fail();
    return nullptr;
  }
  auto s = std::make_unique<Stmt>();
  s->kind = static_cast<StmtKind>(kind);
  s->loc = read_loc(r);
  switch (s->kind) {
    case StmtKind::Assign:
    case StmtKind::TupleAssign:
      read_args(r, s->lhs, depth + 1);
      s->rhs = read_expr(r, depth + 1);
      break;
    case StmtKind::Do: {
      s->do_var = r.str();
      s->origin_id = r.num();
      s->do_lo = read_expr(r, depth + 1);
      s->do_hi = read_expr(r, depth + 1);
      s->do_step = read_expr(r, depth + 1);
      s->omp.parallel = r.boolean();
      s->omp.nowait = r.boolean();
      size_t n = r.count();
      for (size_t i = 0; i < n && r.ok(); ++i)
        s->omp.privates.push_back(r.str());
      n = r.count();
      for (size_t i = 0; i < n && r.ok(); ++i)
        s->omp.firstprivates.push_back(r.str());
      n = r.count();
      for (size_t i = 0; i < n && r.ok(); ++i) {
        OmpInfo::Reduction red;
        red.op = r.str();
        red.var = r.str();
        s->omp.reductions.push_back(std::move(red));
      }
      read_stmts(r, s->body, depth + 1);
      break;
    }
    case StmtKind::If:
      s->cond = read_expr(r, depth + 1);
      read_stmts(r, s->body, depth + 1);
      read_stmts(r, s->else_body, depth + 1);
      break;
    case StmtKind::Call:
    case StmtKind::Write:
      s->name = r.str();
      read_args(r, s->args, depth + 1);
      break;
    case StmtKind::Stop:
      s->name = r.str();
      break;
    case StmtKind::Return:
    case StmtKind::Continue:
      break;
    case StmtKind::TaggedRegion:
      s->name = r.str();
      s->tag_id = r.num();
      read_stmts(r, s->body, depth + 1);
      read_args(r, s->arg_hints, depth + 1);
      break;
  }
  if (!r.ok()) return nullptr;
  return s;
}

bool read_stmts(Reader& r, std::vector<StmtPtr>& out, int depth) {
  size_t n = r.count();
  out.reserve(n);
  for (size_t i = 0; i < n && r.ok(); ++i) {
    StmtPtr s = read_stmt(r, depth);
    if (!s) return false;
    out.push_back(std::move(s));
  }
  return r.ok();
}

}  // namespace

std::string serialize_unit(const fir::ProgramUnit& unit) {
  Writer w;
  w.raw(kMagic);
  w.num(static_cast<int>(unit.kind));
  w.boolean(unit.external_library);
  write_loc(w, unit.loc);
  w.str(unit.name);
  w.num(unit.params.size());
  for (const auto& p : unit.params) w.str(p);
  w.num(unit.decls.size());
  for (const auto& d : unit.decls) {
    w.num(static_cast<int>(d.type));
    w.boolean(d.is_param_const);
    w.boolean(d.annot_imported);
    write_loc(w, d.loc);
    w.str(d.name);
    w.num(d.dims.size());
    for (const auto& dim : d.dims) {
      write_expr(w, dim.lo.get());
      write_expr(w, dim.hi.get());
    }
    write_expr(w, d.param_value.get());
  }
  w.num(unit.commons.size());
  for (const auto& cb : unit.commons) {
    w.str(cb.name);
    w.num(cb.vars.size());
    for (const auto& v : cb.vars) w.str(v);
  }
  write_stmts(w, unit.body);
  return w.take();
}

std::optional<std::unique_ptr<fir::ProgramUnit>> deserialize_unit(
    std::string_view text) {
  const size_t magic_len = sizeof(kMagic) - 1;
  if (text.size() < magic_len ||
      text.compare(0, magic_len, kMagic) != 0)
    return std::nullopt;
  Reader r(text.substr(magic_len));

  auto u = std::make_unique<fir::ProgramUnit>();
  int64_t kind = r.num();
  if (kind < 0 || kind > static_cast<int>(fir::UnitKind::Subroutine))
    return std::nullopt;
  u->kind = static_cast<fir::UnitKind>(kind);
  u->external_library = r.boolean();
  u->loc = read_loc(r);
  u->name = r.str();
  size_t n = r.count();
  for (size_t i = 0; i < n && r.ok(); ++i) u->params.push_back(r.str());
  n = r.count();
  for (size_t i = 0; i < n && r.ok(); ++i) {
    fir::VarDecl d;
    int64_t t = r.num();
    if (t < 0 || t > static_cast<int>(fir::Type::Unknown)) return std::nullopt;
    d.type = static_cast<fir::Type>(t);
    d.is_param_const = r.boolean();
    d.annot_imported = r.boolean();
    d.loc = read_loc(r);
    d.name = r.str();
    size_t nd = r.count();
    for (size_t k = 0; k < nd && r.ok(); ++k) {
      fir::Dim dim;
      dim.lo = read_expr(r, 0);
      dim.hi = read_expr(r, 0);
      d.dims.push_back(std::move(dim));
    }
    d.param_value = read_expr(r, 0);
    u->decls.push_back(std::move(d));
  }
  n = r.count();
  for (size_t i = 0; i < n && r.ok(); ++i) {
    fir::CommonBlock cb;
    cb.name = r.str();
    size_t nv = r.count();
    for (size_t k = 0; k < nv && r.ok(); ++k) cb.vars.push_back(r.str());
    u->commons.push_back(std::move(cb));
  }
  if (!read_stmts(r, u->body, 0)) return std::nullopt;
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return u;
}

}  // namespace ap::incr
