#include "incr/fingerprint.h"

#include <cctype>
#include <cstring>
#include <map>

#include "fir/lexer.h"
#include "support/diagnostics.h"
#include "support/fnv.h"

namespace ap::incr {

namespace {

uint64_t fold_token(uint64_t h, const fir::Token& t) {
  h = fnv_u64(h, static_cast<uint64_t>(t.kind));
  h = fnv1a(h, t.text);
  h = fnv1a(h, std::string_view("\0", 1));
  h = fnv_u64(h, static_cast<uint64_t>(t.int_val));
  uint64_t real_bits = 0;
  static_assert(sizeof(real_bits) == sizeof(t.real_val));
  std::memcpy(&real_bits, &t.real_val, sizeof(real_bits));
  h = fnv_u64(h, real_bits);
  h = fnv_u64(h, t.at_line_start ? 1u : 0u);
  return h;
}

bool is_unit_header(const std::vector<fir::Token>& toks, size_t i,
                    bool at_stmt_start) {
  if (!at_stmt_start) return false;
  const fir::Token& t = toks[i];
  if (t.kind != fir::Tok::Ident) return false;
  if (t.text != "PROGRAM" && t.text != "SUBROUTINE") return false;
  // The header keyword is followed by the unit name.
  return i + 1 < toks.size() && toks[i + 1].kind == fir::Tok::Ident;
}

// Splits the annotation DSL (`subroutine NAME(...) { ... }` entries) at
// top-level `SUBROUTINE` idents and hashes each entry. Returns the per-name
// entry hashes plus a salt folded from any token outside a named entry.
void hash_annotations(std::string_view annotations,
                      std::map<std::string, uint64_t>& by_name,
                      uint64_t& salt) {
  if (annotations.empty()) return;
  DiagnosticEngine diags;
  auto toks = fir::lex(annotations, diags);
  if (diags.has_errors()) {
    // Unlexable annotations: salt everything (the pipeline will report the
    // real error; the incremental plan must just not claim false hits).
    salt = fnv1a(salt, annotations);
    return;
  }
  int depth = 0;
  std::string current;  // "" = outside any entry
  uint64_t h = kFnvOffset;
  auto flush = [&]() {
    if (current.empty()) return;
    auto [it, inserted] = by_name.emplace(current, h);
    if (!inserted) it->second = fnv_u64(it->second, h);
    current.clear();
  };
  for (size_t i = 0; i < toks.size(); ++i) {
    const fir::Token& t = toks[i];
    if (t.kind == fir::Tok::End) break;
    if (depth == 0 && t.kind == fir::Tok::Ident && t.text == "SUBROUTINE" &&
        i + 1 < toks.size() && toks[i + 1].kind == fir::Tok::Ident) {
      flush();
      current = toks[i + 1].text;
      h = kFnvOffset;
    }
    if (t.kind == fir::Tok::LBrace) ++depth;
    if (t.kind == fir::Tok::RBrace && depth > 0) --depth;
    if (current.empty()) {
      if (t.kind != fir::Tok::Newline) salt = fold_token(salt, t);
    } else {
      h = fold_token(h, t);
    }
  }
  flush();
}

struct RawSplit {
  bool ok = false;
  std::vector<UnitFingerprint> units;
};

RawSplit split_source(std::string_view source) {
  RawSplit out;
  DiagnosticEngine diags;
  auto toks = fir::lex(source, diags);
  if (diags.has_errors()) return out;

  bool at_stmt_start = true;
  bool pending_library = false;
  bool have_unit = false;
  UnitFingerprint cur;
  for (size_t i = 0; i < toks.size(); ++i) {
    const fir::Token& t = toks[i];
    if (t.kind == fir::Tok::End) break;
    bool stmt_start = at_stmt_start;
    at_stmt_start = (t.kind == fir::Tok::Newline);
    if (stmt_start && t.kind == fir::Tok::Ident && t.text == "$LIBRARY") {
      // Belongs to the unit the directive marks, which starts next.
      pending_library = true;
      continue;
    }
    if (is_unit_header(toks, i, stmt_start)) {
      if (have_unit) out.units.push_back(std::move(cur));
      cur = UnitFingerprint{};
      cur.name = toks[i + 1].text;
      cur.fp = kFnvOffset;
      if (pending_library) cur.fp = fnv_u64(cur.fp, 0x11B);
      pending_library = false;
      have_unit = true;
    }
    if (!have_unit) return out;  // tokens before any unit header: give up
    if (t.kind != fir::Tok::Newline) cur.fp = fold_token(cur.fp, t);
  }
  if (have_unit) out.units.push_back(std::move(cur));
  out.ok = !out.units.empty();
  return out;
}

}  // namespace

SourceFingerprints fingerprint_units(std::string_view source,
                                     std::string_view annotations) {
  SourceFingerprints out;
  RawSplit split = split_source(source);
  if (!split.ok) return out;
  out.units = std::move(split.units);

  std::map<std::string, uint64_t> annot_by_name;
  uint64_t salt = kFnvOffset;
  hash_annotations(annotations, annot_by_name, salt);
  for (auto& u : out.units) {
    auto it = annot_by_name.find(u.name);
    if (it != annot_by_name.end()) u.fp = fnv_u64(u.fp, it->second);
  }
  // Annotation entries naming no source unit (and stray tokens) fold into
  // every fingerprint: conservative global invalidation.
  for (auto& [name, h] : annot_by_name) {
    bool matched = false;
    for (const auto& u : out.units) matched |= (u.name == name);
    if (!matched) salt = fnv_u64(salt, h);
  }
  if (salt != kFnvOffset)
    for (auto& u : out.units) u.fp = fnv_u64(u.fp, salt);
  out.ok = true;
  return out;
}

std::vector<std::string> source_unit_names(std::string_view source) {
  std::vector<std::string> names;
  for (auto& u : split_source(source).units) names.push_back(u.name);
  return names;
}

namespace {

std::string_view trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

std::string mutate_unit(std::string_view source, std::string_view unit_name,
                        int salt) {
  // Line scan: find the header line of `unit_name`, then the first
  // top-level END line after it, and insert the edit statement before it.
  std::string target = upper(unit_name);
  std::string out;
  out.reserve(source.size() + 32);
  bool in_target = false;
  bool done = false;
  size_t pos = 0;
  while (pos <= source.size()) {
    size_t nl = source.find('\n', pos);
    std::string_view line = source.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    std::string t = upper(trim(line));
    bool comment = !line.empty() && (line[0] == 'C' || line[0] == 'c' ||
                                     line[0] == '*' || line[0] == '!');
    if (!comment) {
      if (t.rfind("PROGRAM ", 0) == 0 || t.rfind("SUBROUTINE ", 0) == 0) {
        std::string rest = t.substr(t.find(' ') + 1);
        size_t end = 0;
        while (end < rest.size() &&
               (std::isalnum(static_cast<unsigned char>(rest[end])) ||
                rest[end] == '_'))
          ++end;
        in_target = (rest.substr(0, end) == target);
      } else if (in_target && !done && t == "END") {
        out += "      IEDIT = " + std::to_string(salt) + "\n";
        done = true;
      }
    }
    out.append(line);
    if (nl == std::string_view::npos) break;
    out += '\n';
    pos = nl + 1;
  }
  return done ? out : std::string(source);
}

}  // namespace ap::incr
