// Bytecode IR for the F77-subset interpreter (DESIGN.md §8).
//
// The tree-walker in interp.cpp resolves every name through a
// std::map<std::string,...> on every reference of every iteration. This IR
// removes that cost once and for all: a one-pass compiler lowers each
// ProgramUnit to a flat register program in which
//
//   * scalars and arrays are integer SLOTS into per-frame tables (names are
//     resolved exactly once, at compile time),
//   * COMMON membership becomes an integer key id into a module-wide key
//     table, so per-thread privatization overrides are slot-indirection
//     vectors instead of string-keyed maps,
//   * array accesses carry precompiled descriptors (constant subscripts are
//     immediates, column-major strides live in the frame's array record),
//   * constant subexpressions are folded at compile time using the SAME
//     helpers the executor runs, so folding can never change a result,
//   * control flow is explicit jumps — no recursion in the executor.
//
// Semantics must mirror interp.cpp bit-for-bit: every runtime error message,
// the statement-budget charge points, the OpenMP privatization/copy-out/
// reduction rules and the statement counters are reproduced exactly (the
// whole existing interpreter test suite runs on this engine by default, and
// tests/interp_vm_test.cpp diffs the two engines on the entire suite).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "fir/ast.h"
#include "interp/storage.h"

namespace ap::interp::bc {

// Thrown by the executor (and by the compile-time folder, where a throw
// simply cancels the fold and defers the operation to runtime).
struct RtError {
  std::string message;
};
struct RtStop {
  std::string message;
};

// ---------------------------------------------------------------------------
// Shared runtime operations
// ---------------------------------------------------------------------------
// One definition used by both the constant folder and the executor: folding
// a subexpression at compile time is guaranteed to produce the value the
// tree-walker would have produced at runtime (interp.cpp eval_binary /
// eval_intrinsic are the reference).

inline RtVal rt_neg(RtVal v) { return RtVal{-v.v, v.is_int}; }
inline RtVal rt_not(RtVal v) { return RtVal::logical(!v.truthy()); }
inline RtVal rt_add(RtVal l, RtVal r) { return RtVal{l.v + r.v, l.is_int && r.is_int}; }
inline RtVal rt_sub(RtVal l, RtVal r) { return RtVal{l.v - r.v, l.is_int && r.is_int}; }
inline RtVal rt_mul(RtVal l, RtVal r) { return RtVal{l.v * r.v, l.is_int && r.is_int}; }

inline RtVal rt_div(RtVal l, RtVal r) {
  if (l.is_int && r.is_int) {
    int64_t d = r.as_int();
    if (d == 0) throw RtError{"integer division by zero"};
    return RtVal::integer(l.as_int() / d);
  }
  return RtVal::real(l.v / r.v);
}

inline RtVal rt_pow(RtVal l, RtVal r) {
  if (l.is_int && r.is_int && r.as_int() >= 0) {
    int64_t b = l.as_int(), ex = r.as_int(), out = 1;
    for (int64_t i = 0; i < ex; ++i) out *= b;
    return RtVal::integer(out);
  }
  return RtVal::real(std::pow(l.v, r.v));
}

inline RtVal rt_eq(RtVal l, RtVal r) { return RtVal::logical(l.v == r.v); }
inline RtVal rt_ne(RtVal l, RtVal r) { return RtVal::logical(l.v != r.v); }
inline RtVal rt_lt(RtVal l, RtVal r) { return RtVal::logical(l.v < r.v); }
inline RtVal rt_le(RtVal l, RtVal r) { return RtVal::logical(l.v <= r.v); }
inline RtVal rt_gt(RtVal l, RtVal r) { return RtVal::logical(l.v > r.v); }
inline RtVal rt_ge(RtVal l, RtVal r) { return RtVal::logical(l.v >= r.v); }

inline RtVal rt_mod(RtVal a, RtVal b) {
  if (a.is_int && b.is_int) {
    int64_t d = b.as_int();
    if (d == 0) throw RtError{"MOD by zero"};
    return RtVal::integer(a.as_int() % d);
  }
  return RtVal::real(std::fmod(a.v, b.v));
}

inline RtVal rt_abs(RtVal a) { return RtVal{std::fabs(a.v), a.is_int}; }
inline RtVal rt_iabs(RtVal a) { return RtVal::integer(std::llabs(a.as_int())); }
inline RtVal rt_sqrt(RtVal a) { return RtVal::real(std::sqrt(a.v)); }
inline RtVal rt_exp(RtVal a) { return RtVal::real(std::exp(a.v)); }
inline RtVal rt_log(RtVal a) { return RtVal::real(std::log(a.v)); }
inline RtVal rt_sin(RtVal a) { return RtVal::real(std::sin(a.v)); }
inline RtVal rt_cos(RtVal a) { return RtVal::real(std::cos(a.v)); }
inline RtVal rt_tan(RtVal a) { return RtVal::real(std::tan(a.v)); }
inline RtVal rt_toreal(RtVal a) { return RtVal::real(a.v); }
inline RtVal rt_toint(RtVal a) { return RtVal::integer(static_cast<int64_t>(a.v)); }
inline RtVal rt_nint(RtVal a) { return RtVal::integer(std::llround(a.v)); }

inline RtVal rt_sign(RtVal a, RtVal b) {
  double m = std::fabs(a.v);
  return RtVal{b.v >= 0 ? m : -m, a.is_int && b.is_int};
}

// min/max keep the FIRST value on ties, like the tree-walker's fold.
inline RtVal rt_min_step(RtVal best, RtVal v) { return v.v < best.v ? v : best; }
inline RtVal rt_max_step(RtVal best, RtVal v) { return v.v > best.v ? v : best; }

// ---------------------------------------------------------------------------
// Instructions
// ---------------------------------------------------------------------------

enum class Op : uint8_t {
  Charge,       // statement boundary: decrement the step budget
  Move,         // r[a] = r[b]
  LoadConst,    // r[a] = consts[d]
  LoadBool,     // r[a] = logical(d != 0)
  LoadScalar,   // r[a] = {*frame.scalar[d], frame.scalar_int[d]}
  StoreScalar,  // *frame.scalar[d] = r[a], truncated when the slot is INTEGER
  StoreRaw,     // *frame.scalar[d] = r[a].v verbatim (DO variable, PARAMETER)
  LoadElem,     // r[a] = array element through accesses[d] (bounds-checked)
  StoreElem,    // array element through accesses[d] = r[a], truncated per type
  Addr,         // r[a] = checked linear offset of accesses[d] (CALL binding)
  Neg, NotOp,                        // r[a] = op r[b]
  Add, Sub, Mul, Div, PowOp,         // r[a] = r[b] op r[c]
  CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
  Bool,         // r[a] = logical(truthy(r[b])) — short-circuit tails
  MinStep, MaxStep,                  // r[a] = rt_min/max_step(r[a], r[b])
  ModOp, SignOp,                     // r[a] = op(r[b], r[c])
  AbsOp, IntAbs, Sqrt, ExpOp, LogOp, Sin, Cos, Tan, ToReal, ToInt, Nint,
  Jump,         // pc = d
  JumpIfFalse,  // if !truthy(r[a]) pc = d
  JumpIfTrue,   // if truthy(r[a]) pc = d
  CheckStep,    // error "zero DO step" when r[a] == 0
  LoopTest,     // i=r[a] hi=r[b] step=r[c]: fall through while in range, else pc=d
  LoopNext,     // r[a].v += r[c].v; pc = d (back to LoopTest)
  ParDo,        // lo=r[a] hi=r[b] step=r[c], pardos[d]; runs the region in
                // parallel when eligible and jumps to its exit, else falls
                // through to the serial loop
  MakeArray,    // create/bind the frame record of array slot d (prologue)
  Reshape,      // re-evaluate formal-array dims of slot d (prologue, CALL)
  Call,         // calls[d]
  Write,        // writes[d]
  Stop,         // throw RtStop{strings[d]}
  Error,        // throw RtError{strings[d]}
  ReturnInDo,   // RETURN inside a DO loop; d = body_start of the enclosing
                // loop, c = 1 when that loop is the OMP-parallel candidate
  Ret,          // return from the unit
};

struct Insn {
  Op op;
  int32_t a = 0;
  int32_t b = 0;
  int32_t c = 0;
  int32_t d = 0;
};

inline constexpr int kMaxRank = 7;

// One subscript: either a register or a compile-time constant (reg < 0).
struct SubRef {
  int32_t reg = -1;
  int64_t cst = 0;
};

// Precompiled array access: slot + per-dimension subscripts. Strides and
// bounds live in the frame's per-slot array record (they can depend on
// adjustable dims, so they are frame state, not module state).
struct AccessDesc {
  int32_t array_slot = 0;
  int32_t rank = 0;
  std::array<SubRef, kMaxRank> subs{};
};

// ---------------------------------------------------------------------------
// Slot tables
// ---------------------------------------------------------------------------

enum class ScalarKind : uint8_t { Local, Param, Formal, Common };

struct ScalarSlot {
  std::string name;
  ScalarKind kind = ScalarKind::Local;
  bool is_int = false;      // declared/implicit type; formal slots get the
                            // caller-side tag at bind time (like ScalarRef)
  int32_t formal_index = -1;  // Formal: position in unit.params
  int32_t common_key = -1;    // Common: module key id
};

enum class ArrayKind : uint8_t { Local, Formal, Common };

// One declared dimension; lo/hi read a prologue register unless constant.
struct DimSpec {
  bool has_hi = true;  // false => assumed size '*' (extent -1)
  SubRef lo{-1, 1};
  SubRef hi{-1, 0};
};

struct ArraySlot {
  std::string name;
  ArrayKind kind = ArrayKind::Local;
  fir::Type type = fir::Type::Real;
  bool is_int = false;
  int32_t formal_index = -1;
  int32_t common_key = -1;
  std::vector<DimSpec> dims;
};

// ---------------------------------------------------------------------------
// Statement plans
// ---------------------------------------------------------------------------

struct WriteItem {
  int32_t reg = -1;  // value register, or
  int32_t str = -1;  // string-pool index for a literal
};
struct WritePlan {
  std::vector<WriteItem> items;
};

enum class ArgKind : uint8_t {
  ScalarPtr,   // caller scalar slot, by reference
  ScalarElem,  // caller array element: slot + Addr register
  ScalarValue, // evaluated expression register, by value
  ArrayWhole,  // caller array slot, whole view
  ArrayElem,   // caller array slot with element base: slot + Addr register
};
struct CallArg {
  ArgKind kind;
  int32_t slot = -1;
  int32_t reg = -1;
};
struct CallPlan {
  int32_t callee = -1;  // unit index
  std::vector<CallArg> args;
};

enum class RedOp : uint8_t { Sum, Prod, Min, Max };

struct PrivateSpec {
  bool is_array = false;
  int32_t slot = -1;
  int32_t common_key = -1;  // -1 when not COMMON
};
struct ReductionSpec {
  RedOp op;
  int32_t slot = -1;
};

struct ParDoPlan {
  int32_t body_start = 0;  // [body_start, body_end) shared with the serial loop
  int32_t body_end = 0;
  int32_t exit_pc = 0;
  int32_t iv_slot = -1;
  std::vector<PrivateSpec> privates;    // in OMP clause order
  std::vector<ReductionSpec> reductions;
};

// ---------------------------------------------------------------------------
// Compiled unit / module
// ---------------------------------------------------------------------------

struct CompiledUnit {
  std::string name;
  const fir::ProgramUnit* unit = nullptr;
  // Frame setup: PARAMETER stores, dimension evaluation, MakeArray/Reshape.
  // Registers used here persist for the frame's lifetime (dim values).
  std::vector<Insn> prologue;
  std::vector<Insn> code;  // unit body; ends with Ret
  int32_t num_regs = 0;
  std::vector<ScalarSlot> scalars;  // frame cell i backs slot i when local
  std::vector<ArraySlot> arrays;
  // Formal position -> slot id (-1 when the formal is of the other sort);
  // the Call executor binds arguments through these.
  std::vector<int32_t> formal_scalar_slot;
  std::vector<int32_t> formal_array_slot;
  std::vector<ParDoPlan> pardos;
  std::vector<CallPlan> calls;
  std::vector<WritePlan> writes;
};

struct Module {
  std::vector<CompiledUnit> units;
  int32_t main_unit = -1;  // last PROGRAM unit, like the tree-walker
  std::vector<RtVal> consts;
  std::vector<std::string> strings;
  std::vector<AccessDesc> accesses;
  // COMMON key table: keys[i] is the "BLOCK/NAME" string; scalar overrides,
  // array overrides and the lazy global materialization cache are all
  // indexed by i.
  std::vector<std::string> keys;
  std::vector<bool> key_is_int;  // declared type at first sight (globals tag)
};

// Compile every unit of `prog`. Never throws: statements the tree-walker
// would fault on compile to Error instructions that fault identically at the
// same execution point.
Module compile(const fir::Program& prog);

}  // namespace ap::interp::bc
