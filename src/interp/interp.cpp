#include "interp/interp.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "interp/bytecode.h"
#include "interp/vm.h"
#include "support/text.h"
#include "support/thread_pool.h"

namespace ap::interp {

namespace {

struct StopException {
  std::string message;
};

struct RuntimeError {
  std::string message;
};

// Per-thread execution context: privatized-COMMON overrides, nesting state,
// step budget.
struct ExecCtx {
  std::map<std::string, std::shared_ptr<ArrayStore>> array_overrides;
  std::map<std::string, double*> scalar_overrides;
  bool in_parallel = false;
  int64_t steps_left = 0;

  void charge() {
    if (--steps_left <= 0)
      throw RuntimeError{"statement budget exhausted (runaway loop?)"};
  }
};

struct Frame {
  const fir::ProgramUnit* unit = nullptr;
  std::map<std::string, ScalarRef> scalars;
  std::map<std::string, ArrayView> arrays;
  // Name -> COMMON key, for privatization override plumbing.
  std::map<std::string, std::string> common_key;
  std::deque<double> cells;  // stable storage for local scalars / temps

  ScalarRef* find_scalar(const std::string& n) {
    auto it = scalars.find(n);
    return it == scalars.end() ? nullptr : &it->second;
  }
  ArrayView* find_array(const std::string& n) {
    auto it = arrays.find(n);
    return it == arrays.end() ? nullptr : &it->second;
  }
};

bool implicit_int(const std::string& name) {
  return !name.empty() && name[0] >= 'I' && name[0] <= 'N';
}

}  // namespace

struct Interpreter::Impl {
  const fir::Program& prog;
  InterpOptions opts;
  GlobalStore& globals;
  std::unique_ptr<ThreadPool> pool;
  std::mutex output_mu;
  std::string output;
  uint64_t total_steps = 0;
  std::atomic<uint64_t> parallel_steps{0};

  Impl(const fir::Program& p, InterpOptions o, GlobalStore& g)
      : prog(p), opts(o), globals(g) {
    if (opts.num_threads > 1 && opts.enable_parallel)
      pool = std::make_unique<ThreadPool>(opts.num_threads);
  }

  // ---- expression evaluation ---------------------------------------------

  RtVal eval(const fir::Expr& e, Frame& f, ExecCtx& ctx) {
    using fir::ExprKind;
    switch (e.kind) {
      case ExprKind::IntLit: return RtVal::integer(e.int_val);
      case ExprKind::RealLit: return RtVal::real(e.real_val);
      case ExprKind::LogicalLit: return RtVal::logical(e.logical_val);
      case ExprKind::StrLit:
        throw RuntimeError{"string value in numeric context"};
      case ExprKind::VarRef: {
        ScalarRef* s = f.find_scalar(e.name);
        if (!s) {
          if (f.find_array(e.name))
            throw RuntimeError{"whole-array reference to " + e.name +
                               " in executable expression"};
          s = create_local_scalar(f, e.name);
        }
        return RtVal{*s->cell, s->is_int};
      }
      case ExprKind::ArrayRef: {
        ArrayView* a = f.find_array(e.name);
        if (!a) throw RuntimeError{"reference to undeclared array " + e.name};
        int64_t off = element_offset(e, *a, f, ctx);
        return RtVal{a->store->data()[off], a->is_int};
      }
      case ExprKind::Unary: {
        RtVal v = eval(*e.args[0], f, ctx);
        switch (e.un_op) {
          case fir::UnOp::Neg: return RtVal{-v.v, v.is_int};
          case fir::UnOp::Plus: return v;
          case fir::UnOp::Not: return RtVal::logical(!v.truthy());
        }
        return v;
      }
      case ExprKind::Binary: return eval_binary(e, f, ctx);
      case ExprKind::Intrinsic: return eval_intrinsic(e, f, ctx);
      case ExprKind::Unknown:
      case ExprKind::Unique:
        throw RuntimeError{
            "annotation operator reached execution: reverse inlining did not "
            "run (or failed) before interpretation"};
      case ExprKind::Section:
        throw RuntimeError{"array section in executable expression"};
    }
    throw RuntimeError{"unreachable expression kind"};
  }

  int64_t element_offset(const fir::Expr& ref, const ArrayView& view, Frame& f,
                         ExecCtx& ctx) {
    std::vector<int64_t> subs;
    subs.reserve(ref.args.size());
    for (const auto& a : ref.args) {
      if (!a) throw RuntimeError{"missing subscript for " + ref.name};
      subs.push_back(eval(*a, f, ctx).as_int());
    }
    auto off = view.cell(subs);
    if (!off) {
      std::string s = ref.name + "(";
      for (size_t i = 0; i < subs.size(); ++i)
        s += (i ? "," : "") + std::to_string(subs[i]);
      throw RuntimeError{"subscript out of bounds: " + s + ")"};
    }
    return *off;
  }

  RtVal eval_binary(const fir::Expr& e, Frame& f, ExecCtx& ctx) {
    using fir::BinOp;
    // Short-circuit logicals first.
    if (e.bin_op == BinOp::And) {
      RtVal l = eval(*e.args[0], f, ctx);
      if (!l.truthy()) return RtVal::logical(false);
      return RtVal::logical(eval(*e.args[1], f, ctx).truthy());
    }
    if (e.bin_op == BinOp::Or) {
      RtVal l = eval(*e.args[0], f, ctx);
      if (l.truthy()) return RtVal::logical(true);
      return RtVal::logical(eval(*e.args[1], f, ctx).truthy());
    }
    RtVal l = eval(*e.args[0], f, ctx);
    RtVal r = eval(*e.args[1], f, ctx);
    bool ii = l.is_int && r.is_int;
    switch (e.bin_op) {
      case BinOp::Add: return RtVal{l.v + r.v, ii};
      case BinOp::Sub: return RtVal{l.v - r.v, ii};
      case BinOp::Mul: return RtVal{l.v * r.v, ii};
      case BinOp::Div:
        if (ii) {
          int64_t d = r.as_int();
          if (d == 0) throw RuntimeError{"integer division by zero"};
          return RtVal::integer(l.as_int() / d);
        }
        return RtVal::real(l.v / r.v);
      case BinOp::Pow:
        if (ii && r.as_int() >= 0) {
          int64_t b = l.as_int(), ex = r.as_int(), out = 1;
          for (int64_t i = 0; i < ex; ++i) out *= b;
          return RtVal::integer(out);
        }
        return RtVal::real(std::pow(l.v, r.v));
      case BinOp::Eq: return RtVal::logical(l.v == r.v);
      case BinOp::Ne: return RtVal::logical(l.v != r.v);
      case BinOp::Lt: return RtVal::logical(l.v < r.v);
      case BinOp::Le: return RtVal::logical(l.v <= r.v);
      case BinOp::Gt: return RtVal::logical(l.v > r.v);
      case BinOp::Ge: return RtVal::logical(l.v >= r.v);
      default:
        throw RuntimeError{"unhandled binary operator"};
    }
  }

  RtVal eval_intrinsic(const fir::Expr& e, Frame& f, ExecCtx& ctx) {
    auto arg = [&](size_t i) { return eval(*e.args[i], f, ctx); };
    const std::string& n = e.name;
    if (n == "MIN" || n == "MIN0" || n == "AMIN1") {
      RtVal best = arg(0);
      for (size_t i = 1; i < e.args.size(); ++i) {
        RtVal v = arg(i);
        if (v.v < best.v) best = v;
      }
      return best;
    }
    if (n == "MAX" || n == "MAX0" || n == "AMAX1") {
      RtVal best = arg(0);
      for (size_t i = 1; i < e.args.size(); ++i) {
        RtVal v = arg(i);
        if (v.v > best.v) best = v;
      }
      return best;
    }
    if (n == "MOD" || n == "DMOD") {
      RtVal a = arg(0), b = arg(1);
      if (a.is_int && b.is_int) {
        int64_t d = b.as_int();
        if (d == 0) throw RuntimeError{"MOD by zero"};
        return RtVal::integer(a.as_int() % d);
      }
      return RtVal::real(std::fmod(a.v, b.v));
    }
    if (n == "ABS" || n == "DABS") {
      RtVal a = arg(0);
      return RtVal{std::fabs(a.v), a.is_int};
    }
    if (n == "IABS") return RtVal::integer(std::llabs(arg(0).as_int()));
    if (n == "SQRT" || n == "DSQRT") return RtVal::real(std::sqrt(arg(0).v));
    if (n == "EXP" || n == "DEXP") return RtVal::real(std::exp(arg(0).v));
    if (n == "LOG" || n == "DLOG") return RtVal::real(std::log(arg(0).v));
    if (n == "SIN") return RtVal::real(std::sin(arg(0).v));
    if (n == "COS") return RtVal::real(std::cos(arg(0).v));
    if (n == "TAN") return RtVal::real(std::tan(arg(0).v));
    if (n == "DBLE" || n == "REAL" || n == "FLOAT") return RtVal::real(arg(0).v);
    if (n == "INT") return RtVal::integer(static_cast<int64_t>(arg(0).v));
    if (n == "NINT") return RtVal::integer(std::llround(arg(0).v));
    if (n == "SIGN") {
      RtVal a = arg(0), b = arg(1);
      double m = std::fabs(a.v);
      return RtVal{b.v >= 0 ? m : -m, a.is_int && b.is_int};
    }
    throw RuntimeError{"unimplemented intrinsic " + n};
  }

  // ---- frames ---------------------------------------------------------------

  ScalarRef* create_local_scalar(Frame& f, const std::string& name) {
    f.cells.push_back(0.0);
    ScalarRef ref{&f.cells.back(), implicit_int(name)};
    auto [it, ok] = f.scalars.emplace(name, ref);
    (void)ok;
    return &it->second;
  }

  int64_t eval_dim_bound(const fir::Expr& e, Frame& f, ExecCtx& ctx) {
    return eval(e, f, ctx).as_int();
  }

  // Build the frame for `unit`. `bound_scalars` / `bound_arrays` carry the
  // evaluated actual arguments keyed by formal name.
  Frame make_frame(const fir::ProgramUnit& unit,
                   std::map<std::string, ScalarRef> bound_scalars,
                   std::map<std::string, ArrayView> bound_arrays,
                   std::deque<double> temp_cells, ExecCtx& ctx) {
    Frame f;
    f.unit = &unit;
    f.cells = std::move(temp_cells);
    f.scalars = std::move(bound_scalars);
    f.arrays = std::move(bound_arrays);

    // PARAMETER constants.
    for (const auto& d : unit.decls) {
      if (!d.is_param_const || !d.param_value) continue;
      RtVal v = eval(*d.param_value, f, ctx);
      f.cells.push_back(v.v);
      f.scalars[d.name] = ScalarRef{&f.cells.back(), d.type == fir::Type::Integer};
    }

    // COMMON membership map.
    std::map<std::string, std::string> common_of;
    for (const auto& blk : unit.commons)
      for (const auto& v : blk.vars)
        common_of[fold_upper(v)] = blk.name;

    // Pass 1: common scalars (array dims may reference them).
    for (const auto& d : unit.decls) {
      if (d.is_param_const || !d.dims.empty()) continue;
      auto it = common_of.find(d.name);
      if (it == common_of.end()) continue;
      std::string key = it->second + "/" + d.name;
      bool is_int = d.type == fir::Type::Integer;
      double* cell;
      auto ov = ctx.scalar_overrides.find(key);
      if (ov != ctx.scalar_overrides.end())
        cell = ov->second;
      else
        cell = globals.get_or_create_scalar(key, is_int);
      f.scalars[d.name] = ScalarRef{cell, is_int};
      f.common_key[d.name] = key;
    }

    // Pass 2: common arrays and local arrays / scalars.
    for (const auto& d : unit.decls) {
      if (d.is_param_const) continue;
      if (d.dims.empty()) {
        if (common_of.count(d.name)) continue;  // done above
        if (f.scalars.count(d.name)) continue;  // bound parameter
        f.cells.push_back(0.0);
        f.scalars[d.name] =
            ScalarRef{&f.cells.back(), d.type == fir::Type::Integer};
        continue;
      }
      if (f.arrays.count(d.name)) continue;  // bound array parameter
      // Evaluate declared shape.
      std::vector<int64_t> lower, extent;
      for (const auto& dim : d.dims) {
        int64_t lo = dim.lo ? eval_dim_bound(*dim.lo, f, ctx) : 1;
        int64_t ext = -1;
        if (dim.hi) ext = eval_dim_bound(*dim.hi, f, ctx) - lo + 1;
        lower.push_back(lo);
        extent.push_back(ext);
      }
      auto it = common_of.find(d.name);
      if (it != common_of.end()) {
        std::string key = it->second + "/" + d.name;
        std::shared_ptr<ArrayStore> store;
        auto ov = ctx.array_overrides.find(key);
        if (ov != ctx.array_overrides.end()) {
          store = ov->second;
        } else {
          // Assumed-size COMMON arrays are illegal; treat extent -1 as 1.
          std::vector<int64_t> ce = extent;
          for (auto& e : ce)
            if (e < 0) e = 1;
          store = globals.get_or_create_array(key, d.type, lower, ce);
        }
        f.arrays[d.name] = ArrayView{store, 0, lower, extent,
                                     d.type == fir::Type::Integer};
        f.common_key[d.name] = key;
      } else {
        if (unit.is_param(d.name))
          throw RuntimeError{"array parameter " + d.name + " of " + unit.name +
                             " was not bound (argument mismatch)"};
        std::vector<int64_t> ce = extent;
        for (auto& e : ce)
          if (e < 0)
            throw RuntimeError{"local array " + d.name + " has assumed size"};
        auto store = std::make_shared<ArrayStore>(d.type, lower, ce);
        f.arrays[d.name] =
            ArrayView{store, 0, lower, extent, d.type == fir::Type::Integer};
      }
    }
    return f;
  }

  // ---- statements ----------------------------------------------------------

  void exec_block(const std::vector<fir::StmtPtr>& body, Frame& f, ExecCtx& ctx) {
    for (const auto& s : body) {
      if (!s) continue;
      if (exec_stmt(*s, f, ctx)) return;  // RETURN unwinds the block
    }
  }

  // Returns true if a RETURN was executed.
  bool exec_stmt(const fir::Stmt& s, Frame& f, ExecCtx& ctx) {
    ctx.charge();
    using fir::StmtKind;
    switch (s.kind) {
      case StmtKind::Assign: {
        RtVal v = eval(*s.rhs, f, ctx);
        store(*s.lhs[0], v, f, ctx);
        return false;
      }
      case StmtKind::TupleAssign:
        throw RuntimeError{"tuple assignment reached execution"};
      case StmtKind::Do:
        exec_do(s, f, ctx);
        return false;
      case StmtKind::If: {
        if (eval(*s.cond, f, ctx).truthy()) {
          for (const auto& st : s.body)
            if (st && exec_stmt(*st, f, ctx)) return true;
        } else {
          for (const auto& st : s.else_body)
            if (st && exec_stmt(*st, f, ctx)) return true;
        }
        return false;
      }
      case StmtKind::Call:
        exec_call(s, f, ctx);
        return false;
      case StmtKind::Write: {
        std::string line;
        for (const auto& a : s.args) {
          if (!line.empty()) line += " ";
          if (a->kind == fir::ExprKind::StrLit) {
            line += a->str_val;
          } else {
            RtVal v = eval(*a, f, ctx);
            line += v.is_int ? std::to_string(v.as_int()) : std::to_string(v.v);
          }
        }
        {
          std::lock_guard<std::mutex> lock(output_mu);
          output += line;
          output += '\n';
        }
        return false;
      }
      case StmtKind::Stop:
        throw StopException{s.name};
      case StmtKind::Return:
        return true;
      case StmtKind::Continue:
        return false;
      case StmtKind::TaggedRegion:
        throw RuntimeError{
            "tagged annotation region reached execution: reverse inlining "
            "did not run before interpretation"};
    }
    return false;
  }

  void store(const fir::Expr& lhs, RtVal v, Frame& f, ExecCtx& ctx) {
    if (lhs.kind == fir::ExprKind::VarRef) {
      ScalarRef* s = f.find_scalar(lhs.name);
      if (!s) {
        if (f.find_array(lhs.name))
          throw RuntimeError{"whole-array assignment to " + lhs.name +
                             " in executable code"};
        s = create_local_scalar(f, lhs.name);
      }
      *s->cell = s->is_int ? static_cast<double>(v.as_int()) : v.v;
      return;
    }
    if (lhs.kind == fir::ExprKind::ArrayRef) {
      ArrayView* a = f.find_array(lhs.name);
      if (!a) throw RuntimeError{"assignment to undeclared array " + lhs.name};
      int64_t off = element_offset(lhs, *a, f, ctx);
      a->store->data()[off] =
          a->is_int ? static_cast<double>(v.as_int()) : v.v;
      return;
    }
    throw RuntimeError{"unsupported assignment target"};
  }

  void exec_do(const fir::Stmt& s, Frame& f, ExecCtx& ctx) {
    int64_t lo = eval(*s.do_lo, f, ctx).as_int();
    int64_t hi = eval(*s.do_hi, f, ctx).as_int();
    int64_t step = s.do_step ? eval(*s.do_step, f, ctx).as_int() : 1;
    if (step == 0) throw RuntimeError{"zero DO step"};

    bool parallel = s.omp.parallel && opts.enable_parallel && pool &&
                    !ctx.in_parallel && step == 1 && hi > lo;
    if (!parallel) {
      ScalarRef* iv = f.find_scalar(s.do_var);
      if (!iv) iv = create_local_scalar(f, s.do_var);
      if (step > 0) {
        for (int64_t i = lo; i <= hi; i += step) {
          *iv->cell = static_cast<double>(i);
          for (const auto& st : s.body)
            if (st && exec_stmt(*st, f, ctx))
              throw RuntimeError{"RETURN out of a DO loop"};
        }
      } else {
        for (int64_t i = lo; i >= hi; i += step) {
          *iv->cell = static_cast<double>(i);
          for (const auto& st : s.body)
            if (st && exec_stmt(*st, f, ctx))
              throw RuntimeError{"RETURN out of a DO loop"};
        }
      }
      return;
    }
    exec_parallel_do(s, f, ctx, lo, hi);
  }

  struct PrivateSet {
    // Per-thread private storage, for copy-out by the last-chunk thread.
    std::map<std::string, double> scalar_values;           // frame scalars
    std::map<std::string, std::shared_ptr<ArrayStore>> arrays;  // by common key
    std::map<std::string, std::shared_ptr<ArrayStore>> local_arrays;  // by name
    std::map<std::string, double> reductions;
  };

  void exec_parallel_do(const fir::Stmt& s, Frame& f, ExecCtx& ctx, int64_t lo,
                        int64_t hi) {
    int nthreads = pool->size();
    std::vector<PrivateSet> privs(static_cast<size_t>(nthreads));
    std::vector<int> last_chunk_thread(1, -1);
    std::mutex red_mu;

    // Identify reduction identities.
    auto identity = [](const std::string& op) {
      if (op == "*") return 1.0;
      if (op == "MIN") return std::numeric_limits<double>::infinity();
      if (op == "MAX") return -std::numeric_limits<double>::infinity();
      return 0.0;  // "+"
    };

    pool->parallel_for(lo, hi, [&](int64_t clo, int64_t chi, int tid) {
      PrivateSet& mine = privs[static_cast<size_t>(tid)];
      // Thread-local context: copy overrides, set nesting flag, share the
      // step budget approximately (each thread gets the full remainder; the
      // guard is about runaway loops, not precise accounting).
      ExecCtx tctx;
      tctx.in_parallel = true;
      tctx.steps_left = ctx.steps_left;
      tctx.array_overrides = ctx.array_overrides;
      tctx.scalar_overrides = ctx.scalar_overrides;

      // Shadow frame: shared bindings plus private replacements.
      Frame shadow;
      shadow.unit = f.unit;
      shadow.scalars = f.scalars;
      shadow.arrays = f.arrays;
      shadow.common_key = f.common_key;

      auto privatize_scalar = [&](const std::string& name, double init) {
        shadow.cells.push_back(init);
        ScalarRef* orig = f.find_scalar(name);
        bool is_int = orig ? orig->is_int : implicit_int(name);
        shadow.scalars[name] = ScalarRef{&shadow.cells.back(), is_int};
        auto ck = f.common_key.find(name);
        if (ck != f.common_key.end())
          tctx.scalar_overrides[ck->second] = &shadow.cells.back();
      };

      for (const auto& p : s.omp.privates) {
        ArrayView* av = f.find_array(p);
        if (av) {
          auto priv_store = std::make_shared<ArrayStore>(*av->store);
          ArrayView pv = *av;
          pv.store = priv_store;
          shadow.arrays[p] = pv;
          auto ck = f.common_key.find(p);
          if (ck != f.common_key.end()) {
            tctx.array_overrides[ck->second] = priv_store;
            mine.arrays[ck->second] = priv_store;
          } else {
            mine.local_arrays[p] = priv_store;
          }
          continue;
        }
        ScalarRef* sv = f.find_scalar(p);
        privatize_scalar(p, sv ? *sv->cell : 0.0);
        // Remember the cell for copy-out (pointer into shadow.cells is
        // stable because deque never reallocates existing nodes).
        mine.scalar_values[p] = 0.0;  // value harvested after the chunk runs
      }
      for (const auto& r : s.omp.reductions) {
        shadow.cells.push_back(identity(r.op));
        ScalarRef* orig = f.find_scalar(r.var);
        shadow.scalars[r.var] =
            ScalarRef{&shadow.cells.back(), orig ? orig->is_int : implicit_int(r.var)};
      }
      // Private loop variable.
      shadow.cells.push_back(0.0);
      shadow.scalars[s.do_var] = ScalarRef{&shadow.cells.back(), true};
      ScalarRef iv = shadow.scalars[s.do_var];

      for (int64_t i = clo; i <= chi; ++i) {
        *iv.cell = static_cast<double>(i);
        for (const auto& st : s.body)
          if (st && exec_stmt(*st, shadow, tctx))
            throw RuntimeError{"RETURN out of a parallel DO"};
      }

      parallel_steps.fetch_add(
          static_cast<uint64_t>(ctx.steps_left - tctx.steps_left),
          std::memory_order_relaxed);

      // Harvest private scalar values and reduction partials.
      for (auto& [name, val] : mine.scalar_values)
        val = *shadow.scalars[name].cell;
      for (const auto& r : s.omp.reductions)
        mine.reductions[r.var] = *shadow.scalars[r.var].cell;
      if (chi == hi) {
        std::lock_guard<std::mutex> lock(red_mu);
        last_chunk_thread[0] = tid;
      }
    });

    // Last-value copy-out (sequential semantics for live-out privates).
    if (last_chunk_thread[0] >= 0) {
      PrivateSet& last = privs[static_cast<size_t>(last_chunk_thread[0])];
      for (const auto& [name, val] : last.scalar_values) {
        ScalarRef* sv = f.find_scalar(name);
        if (!sv) sv = create_local_scalar(f, name);
        *sv->cell = val;
      }
      for (const auto& [key, store] : last.arrays) {
        // Copy back into the shared global store.
        auto shared = globals.get_or_create_array(key, store->elem_type(), {}, {});
        if (shared->size() == store->size())
          shared->raw() = store->raw();
      }
      for (const auto& [name, store] : last.local_arrays) {
        ArrayView* av = f.find_array(name);
        if (av && av->store->size() == store->size())
          av->store->raw() = store->raw();
      }
    }
    // Combine reductions deterministically in thread order.
    for (const auto& r : s.omp.reductions) {
      ScalarRef* sv = f.find_scalar(r.var);
      if (!sv) sv = create_local_scalar(f, r.var);
      double acc = *sv->cell;
      for (const auto& p : privs) {
        auto it = p.reductions.find(r.var);
        if (it == p.reductions.end()) continue;
        if (r.op == "*")
          acc *= it->second;
        else if (r.op == "MIN")
          acc = std::min(acc, it->second);
        else if (r.op == "MAX")
          acc = std::max(acc, it->second);
        else
          acc += it->second;
      }
      *sv->cell = sv->is_int ? std::llround(acc) : acc;
    }
    // Loop variable exit value (Fortran leaves first-out-of-range).
    ScalarRef* iv = f.find_scalar(s.do_var);
    if (!iv) iv = create_local_scalar(f, s.do_var);
    *iv->cell = static_cast<double>(hi + 1);
  }

  void exec_call(const fir::Stmt& s, Frame& caller, ExecCtx& ctx) {
    const fir::ProgramUnit* callee = prog.find_unit(s.name);
    if (!callee) throw RuntimeError{"CALL to undefined subroutine " + s.name};
    if (callee->params.size() != s.args.size())
      throw RuntimeError{"argument count mismatch calling " + s.name};

    std::map<std::string, ScalarRef> bscalars;
    std::map<std::string, ArrayView> barrays;
    std::deque<double> temps;

    // Which formals are arrays, per the callee's declarations.
    for (size_t i = 0; i < callee->params.size(); ++i) {
      std::string formal = fold_upper(callee->params[i]);
      const fir::VarDecl* fd = callee->find_decl(formal);
      bool formal_array = fd && !fd->dims.empty();
      const fir::Expr& actual = *s.args[i];

      if (formal_array) {
        if (actual.kind == fir::ExprKind::VarRef) {
          ArrayView* av = caller.find_array(actual.name);
          if (!av)
            throw RuntimeError{"actual " + actual.name + " for array formal " +
                               formal + " is not an array"};
          ArrayView view = *av;  // reshape below once scalars are bound
          barrays[formal] = view;
        } else if (actual.kind == fir::ExprKind::ArrayRef) {
          ArrayView* av = caller.find_array(actual.name);
          if (!av) throw RuntimeError{"actual array " + actual.name + " unknown"};
          int64_t off = element_offset(actual, *av, caller, ctx);
          ArrayView view = *av;
          view.base = off;
          barrays[formal] = view;
        } else {
          throw RuntimeError{"cannot pass expression to array formal " + formal};
        }
      } else {
        // Scalar formal: pass by reference when the actual is an lvalue.
        if (actual.kind == fir::ExprKind::VarRef) {
          ScalarRef* sv = caller.find_scalar(actual.name);
          if (!sv) sv = create_local_scalar(caller, actual.name);
          bscalars[formal] = *sv;
        } else if (actual.kind == fir::ExprKind::ArrayRef) {
          ArrayView* av = caller.find_array(actual.name);
          if (!av) throw RuntimeError{"actual array " + actual.name + " unknown"};
          int64_t off = element_offset(actual, *av, caller, ctx);
          bscalars[formal] = ScalarRef{av->store->data() + off, av->is_int};
        } else {
          RtVal v = eval(actual, caller, ctx);
          temps.push_back(v.v);
          bscalars[formal] = ScalarRef{&temps.back(), v.is_int};
        }
      }
    }

    Frame f = make_frame(*callee, std::move(bscalars), std::move(barrays),
                         std::move(temps), ctx);

    // Reshape array-formal views with the callee's declared (possibly
    // adjustable) dimensions, now that scalar formals are bound.
    for (const auto& p : callee->params) {
      std::string formal = fold_upper(p);
      const fir::VarDecl* fd = callee->find_decl(formal);
      if (!fd || fd->dims.empty()) continue;
      ArrayView* view = f.find_array(formal);
      if (!view) continue;
      std::vector<int64_t> lower, extent;
      for (const auto& dim : fd->dims) {
        int64_t lo = dim.lo ? eval_dim_bound(*dim.lo, f, ctx) : 1;
        int64_t ext = dim.hi ? eval_dim_bound(*dim.hi, f, ctx) - lo + 1 : -1;
        lower.push_back(lo);
        extent.push_back(ext);
      }
      view->lower = std::move(lower);
      view->extent = std::move(extent);
      view->is_int = fd->type == fir::Type::Integer;
    }

    exec_block(callee->body, f, ctx);
  }
};

Interpreter::Interpreter(const fir::Program& prog, InterpOptions opts)
    : opts_(opts), globals_(std::make_unique<GlobalStore>()) {
  if (opts.engine == Engine::Bytecode) {
    auto t0 = std::chrono::steady_clock::now();
    module_ = std::make_unique<bc::Module>(bc::compile(prog));
    compile_ms_ = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  } else {
    impl_ = std::make_unique<Impl>(prog, opts, *globals_);
  }
}

Interpreter::~Interpreter() = default;

RunResult Interpreter::run() {
  if (module_) return bc::execute(*module_, opts_, *globals_, compile_ms_);
  RunResult result;
  const fir::ProgramUnit* main = nullptr;
  for (const auto& u : impl_->prog.units)
    if (u->kind == fir::UnitKind::Program) main = u.get();
  if (!main) {
    result.error = "no PROGRAM unit";
    return result;
  }
  ExecCtx ctx;
  ctx.steps_left = impl_->opts.max_steps;
  try {
    Frame f = impl_->make_frame(*main, {}, {}, {}, ctx);
    impl_->exec_block(main->body, f, ctx);
    result.ok = true;
  } catch (const StopException& e) {
    result.ok = true;
    result.stopped = true;
    result.stop_message = e.message;
  } catch (const RuntimeError& e) {
    result.error = e.message;
  }
  result.output = impl_->output;
  uint64_t par = impl_->parallel_steps.load(std::memory_order_relaxed);
  result.statements_in_parallel = par;
  result.statements_executed =
      static_cast<uint64_t>(impl_->opts.max_steps - ctx.steps_left) + par;
  return result;
}

}  // namespace ap::interp
