// Bytecode executor for the compiled Module of bytecode.h.
//
// Runs the flat register program with a tight dispatch loop: scalar reads
// are one pointer dereference (slot tables resolved at Interpreter
// construction), array accesses use the precompiled descriptors, and the
// per-thread privatization of OMP PARALLEL DO regions is a copy of two
// small vectors (slot -> cell pointer, slot -> array record) instead of the
// tree-walker's string-keyed frame maps.
//
// The contract (see bytecode.h) is bit-identical RunResult output with the
// tree-walker, including error messages, statement counters and OMP
// copy-in/copy-out/reduction semantics.
#pragma once

#include "interp/bytecode.h"
#include "interp/interp.h"

namespace ap::interp::bc {

// Execute the module's main PROGRAM unit. `compile_ms` (the AST-to-bytecode
// compile time measured by the caller) is copied into the result so drivers
// and telemetry can report it.
RunResult execute(const Module& m, const InterpOptions& opts,
                  GlobalStore& globals, double compile_ms);

}  // namespace ap::interp::bc
