// One-pass compiler from the (reverse-inlined) FIR AST to the register
// bytecode of bytecode.h. See the header for the semantic contract; the
// reference implementation being mirrored is interp.cpp.
#include "interp/bytecode.h"

#include <map>
#include <utility>

#include "support/text.h"

namespace ap::interp::bc {

namespace {

bool implicit_int(const std::string& name) {
  return !name.empty() && name[0] >= 'I' && name[0] <= 'N';
}

// A compiled expression: either a folded constant or a register.
struct Operand {
  bool is_const = false;
  RtVal cst;
  int32_t reg = -1;

  static Operand constant(RtVal v) { return Operand{true, v, -1}; }
  static Operand in_reg(int32_t r) { return Operand{false, RtVal{}, r}; }
};

class UnitCompiler {
 public:
  UnitCompiler(Module& m, const fir::Program& prog,
               const std::map<std::string, int32_t>& unit_index,
               const fir::ProgramUnit& u, CompiledUnit& cu)
      : m_(m), prog_(prog), unit_index_(unit_index), u_(u), cu_(cu) {}

  void run() {
    cu_.name = u_.name;
    cu_.unit = &u_;
    build_slots();
    compile_prologue();
    out_ = &cu_.code;
    next_reg_ = 0;
    for (const auto& s : u_.body)
      if (s) compile_stmt(*s);
    emit({Op::Ret});
    cu_.num_regs = max_reg_;
  }

 private:
  Module& m_;
  const fir::Program& prog_;
  const std::map<std::string, int32_t>& unit_index_;
  const fir::ProgramUnit& u_;
  CompiledUnit& cu_;

  std::map<std::string, int32_t> scalar_slots_;
  std::map<std::string, int32_t> array_slots_;
  std::map<std::string, int32_t> common_key_of_;  // declared name -> key id
  std::vector<const fir::VarDecl*> array_decl_;   // per array slot
  std::vector<bool> array_dims_compiled_;

  std::vector<Insn>* out_ = nullptr;
  int32_t next_reg_ = 0;
  int32_t max_reg_ = 0;
  bool in_param_expr_ = false;

  struct LoopCtx {
    int32_t body_start;
    bool omp;
  };
  std::vector<LoopCtx> loops_;

  std::map<std::pair<uint64_t, bool>, int32_t> const_ids_;
  std::map<std::string, int32_t> string_ids_;

  // ---- small helpers ------------------------------------------------------

  size_t emit(Insn i) {
    out_->push_back(i);
    return out_->size() - 1;
  }
  Insn& at(size_t idx) { return (*out_)[idx]; }
  int32_t here() const { return static_cast<int32_t>(out_->size()); }

  int32_t alloc_reg() {
    int32_t r = next_reg_++;
    if (next_reg_ > max_reg_) max_reg_ = next_reg_;
    return r;
  }

  int32_t intern_const(RtVal v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v.v));
    __builtin_memcpy(&bits, &v.v, sizeof(bits));
    auto key = std::make_pair(bits, v.is_int);
    auto it = const_ids_.find(key);
    if (it != const_ids_.end()) return it->second;
    int32_t id = static_cast<int32_t>(m_.consts.size());
    m_.consts.push_back(v);
    const_ids_[key] = id;
    return id;
  }

  int32_t intern_string(const std::string& s) {
    auto it = string_ids_.find(s);
    if (it != string_ids_.end()) return it->second;
    int32_t id = static_cast<int32_t>(m_.strings.size());
    m_.strings.push_back(s);
    string_ids_[s] = id;
    return id;
  }

  int32_t key_id(const std::string& key, bool is_int) {
    for (size_t i = 0; i < m_.keys.size(); ++i)
      if (m_.keys[i] == key) return static_cast<int32_t>(i);
    m_.keys.push_back(key);
    m_.key_is_int.push_back(is_int);
    return static_cast<int32_t>(m_.keys.size() - 1);
  }

  int32_t materialize(const Operand& o) {
    if (!o.is_const) return o.reg;
    int32_t r = alloc_reg();
    emit({Op::LoadConst, r, 0, 0, intern_const(o.cst)});
    return r;
  }

  // Emit an Error instruction; the dummy constant keeps expression
  // compilation total (everything after the Error is unreachable).
  Operand error_op(const std::string& msg) {
    emit({Op::Error, 0, 0, 0, intern_string(msg)});
    return Operand::constant(RtVal::integer(0));
  }

  int32_t find_scalar(const std::string& n) const {
    auto it = scalar_slots_.find(n);
    return it == scalar_slots_.end() ? -1 : it->second;
  }
  int32_t find_array(const std::string& n) const {
    auto it = array_slots_.find(n);
    return it == array_slots_.end() ? -1 : it->second;
  }

  // Mirrors Frame::create_local_scalar: made exactly where the tree-walker
  // would create the name on first use (compile order == first-execution
  // order for the straight-line programs FIR has).
  int32_t create_scalar(const std::string& n) {
    ScalarSlot s;
    s.name = n;
    s.kind = ScalarKind::Local;
    s.is_int = implicit_int(n);
    cu_.scalars.push_back(std::move(s));
    int32_t id = static_cast<int32_t>(cu_.scalars.size() - 1);
    scalar_slots_[n] = id;
    return id;
  }

  // ---- slot construction --------------------------------------------------

  void build_slots() {
    // COMMON membership (declared names only, like make_frame's common_of).
    for (const auto& blk : u_.commons)
      for (const auto& v : blk.vars) {
        std::string name = fold_upper(v);
        const fir::VarDecl* d = u_.find_decl(name);
        bool is_int = d && d->type == fir::Type::Integer;
        common_key_of_[name] = key_id(blk.name + "/" + name, is_int);
      }

    // Formals, in parameter order.
    cu_.formal_scalar_slot.assign(u_.params.size(), -1);
    cu_.formal_array_slot.assign(u_.params.size(), -1);
    for (size_t i = 0; i < u_.params.size(); ++i) {
      std::string name = fold_upper(u_.params[i]);
      const fir::VarDecl* fd = u_.find_decl(name);
      if (fd && !fd->dims.empty()) {
        if (array_slots_.count(name)) {
          cu_.formal_array_slot[i] = array_slots_[name];
          continue;
        }
        ArraySlot a;
        a.name = name;
        a.kind = ArrayKind::Formal;
        a.type = fd->type;
        a.is_int = fd->type == fir::Type::Integer;
        a.formal_index = static_cast<int32_t>(i);
        cu_.formal_array_slot[i] = static_cast<int32_t>(cu_.arrays.size());
        array_slots_[name] = static_cast<int32_t>(cu_.arrays.size());
        cu_.arrays.push_back(std::move(a));
        array_decl_.push_back(fd);
        array_dims_compiled_.push_back(false);
      } else {
        if (scalar_slots_.count(name)) {
          cu_.formal_scalar_slot[i] = scalar_slots_[name];
          continue;
        }
        ScalarSlot s;
        s.name = name;
        s.kind = ScalarKind::Formal;
        s.is_int = fd ? fd->type == fir::Type::Integer : implicit_int(name);
        s.formal_index = static_cast<int32_t>(i);
        cu_.formal_scalar_slot[i] = static_cast<int32_t>(cu_.scalars.size());
        scalar_slots_[name] = static_cast<int32_t>(cu_.scalars.size());
        cu_.scalars.push_back(std::move(s));
      }
    }

    // Declarations.
    for (const auto& d : u_.decls) {
      if (d.is_param_const && d.param_value) {
        if (scalar_slots_.count(d.name)) continue;
        ScalarSlot s;
        s.name = d.name;
        s.kind = ScalarKind::Param;
        s.is_int = d.type == fir::Type::Integer;
        scalar_slots_[d.name] = static_cast<int32_t>(cu_.scalars.size());
        cu_.scalars.push_back(std::move(s));
        continue;
      }
      if (d.is_param_const) continue;
      if (d.dims.empty()) {
        if (scalar_slots_.count(d.name)) continue;  // bound formal
        ScalarSlot s;
        s.name = d.name;
        s.is_int = d.type == fir::Type::Integer;
        auto ck = common_key_of_.find(d.name);
        if (ck != common_key_of_.end()) {
          s.kind = ScalarKind::Common;
          s.common_key = ck->second;
        }
        scalar_slots_[d.name] = static_cast<int32_t>(cu_.scalars.size());
        cu_.scalars.push_back(std::move(s));
        continue;
      }
      if (array_slots_.count(d.name)) continue;  // bound formal array
      ArraySlot a;
      a.name = d.name;
      a.type = d.type;
      a.is_int = d.type == fir::Type::Integer;
      auto ck = common_key_of_.find(d.name);
      if (ck != common_key_of_.end()) {
        a.kind = ArrayKind::Common;
        a.common_key = ck->second;
      }
      array_slots_[d.name] = static_cast<int32_t>(cu_.arrays.size());
      cu_.arrays.push_back(std::move(a));
      array_decl_.push_back(&d);
      array_dims_compiled_.push_back(false);
    }
  }

  // ---- prologue -----------------------------------------------------------

  // Compile one declared dimension list into the slot's DimSpecs. Bound
  // values are converted with as_int at runtime (MakeArray/Reshape), so the
  // registers carry the raw evaluated values.
  void compile_dims(int32_t slot) {
    if (array_dims_compiled_[static_cast<size_t>(slot)]) return;
    array_dims_compiled_[static_cast<size_t>(slot)] = true;
    const fir::VarDecl* d = array_decl_[static_cast<size_t>(slot)];
    ArraySlot& a = cu_.arrays[static_cast<size_t>(slot)];
    if (d->dims.size() > static_cast<size_t>(kMaxRank)) {
      // F77 caps arrays at rank 7; the fixed-size access descriptors rely
      // on that, so anything beyond it faults before creation.
      error_op("array " + a.name + " exceeds the maximum rank of 7");
      return;
    }
    for (const auto& dim : d->dims) {
      DimSpec spec;
      if (dim.lo) {
        Operand lo = compile_expr(*dim.lo);
        spec.lo = lo.is_const ? SubRef{-1, lo.cst.as_int()}
                              : SubRef{materialize(lo), 0};
      }
      if (dim.hi) {
        Operand hi = compile_expr(*dim.hi);
        spec.hi = hi.is_const ? SubRef{-1, hi.cst.as_int()}
                              : SubRef{materialize(hi), 0};
      } else {
        spec.has_hi = false;
      }
      a.dims.push_back(spec);
    }
  }

  void compile_prologue() {
    out_ = &cu_.prologue;
    next_reg_ = 0;

    // PARAMETER constants, in declaration order (make_frame step 1). The
    // value is stored verbatim (no truncation), like the tree-walker.
    for (const auto& d : u_.decls) {
      if (!d.is_param_const || !d.param_value) continue;
      in_param_expr_ = true;
      Operand v = compile_expr(*d.param_value);
      in_param_expr_ = false;
      int32_t r = materialize(v);
      emit({Op::StoreRaw, r, 0, 0, find_scalar(d.name)});
    }

    // Non-formal arrays in declaration order (make_frame pass 2): dimension
    // evaluation interleaved with creation, so a later declaration's bounds
    // can read an earlier array's elements, exactly like the tree-walker.
    for (const auto& d : u_.decls) {
      if (d.is_param_const || d.dims.empty()) continue;
      int32_t slot = find_array(d.name);
      if (slot < 0) continue;
      if (cu_.arrays[static_cast<size_t>(slot)].kind == ArrayKind::Formal)
        continue;  // bound argument; reshaped below
      compile_dims(slot);
      emit({Op::MakeArray, 0, 0, 0, slot});
    }

    // Formal arrays, in parameter order (exec_call's reshape loop): the
    // bound caller view is re-shaped with the callee's declared (possibly
    // adjustable) dimensions once scalar formals are available.
    for (const auto& p : u_.params) {
      std::string formal = fold_upper(p);
      int32_t slot = find_array(formal);
      if (slot < 0) continue;
      if (cu_.arrays[static_cast<size_t>(slot)].kind != ArrayKind::Formal)
        continue;
      compile_dims(slot);
      emit({Op::Reshape, 0, 0, 0, slot});
    }
  }

  // ---- expressions --------------------------------------------------------

  Operand compile_expr(const fir::Expr& e) {
    using fir::ExprKind;
    switch (e.kind) {
      case ExprKind::IntLit: return Operand::constant(RtVal::integer(e.int_val));
      case ExprKind::RealLit: return Operand::constant(RtVal::real(e.real_val));
      case ExprKind::LogicalLit:
        return Operand::constant(RtVal::logical(e.logical_val));
      case ExprKind::StrLit:
        return error_op("string value in numeric context");
      case ExprKind::VarRef: return compile_var_ref(e);
      case ExprKind::ArrayRef: {
        if (find_array(e.name) < 0)
          return error_op("reference to undeclared array " + e.name);
        int32_t desc = compile_access(e);
        if (desc < 0) return Operand::constant(RtVal::integer(0));
        int32_t r = alloc_reg();
        emit({Op::LoadElem, r, 0, 0, desc});
        return Operand::in_reg(r);
      }
      case ExprKind::Unary: {
        Operand v = compile_expr(*e.args[0]);
        switch (e.un_op) {
          case fir::UnOp::Plus: return v;
          case fir::UnOp::Neg:
            if (v.is_const) return Operand::constant(rt_neg(v.cst));
            return unary(Op::Neg, v);
          case fir::UnOp::Not:
            if (v.is_const) return Operand::constant(rt_not(v.cst));
            return unary(Op::NotOp, v);
        }
        return v;
      }
      case ExprKind::Binary: return compile_binary(e);
      case ExprKind::Intrinsic: return compile_intrinsic(e);
      case ExprKind::Unknown:
      case ExprKind::Unique:
        return error_op(
            "annotation operator reached execution: reverse inlining did not "
            "run (or failed) before interpretation");
      case ExprKind::Section:
        return error_op("array section in executable expression");
    }
    return error_op("unreachable expression kind");
  }

  Operand compile_var_ref(const fir::Expr& e) {
    int32_t slot = find_scalar(e.name);
    // PARAMETER values evaluate before COMMON scalars are bound: the
    // tree-walker reads a freshly created local zero there (make_frame's
    // ordering); reproduce that as a typed zero constant.
    if (in_param_expr_ && slot >= 0 &&
        cu_.scalars[static_cast<size_t>(slot)].kind == ScalarKind::Common)
      return Operand::constant(RtVal{0.0, implicit_int(e.name)});
    if (slot < 0) {
      if (find_array(e.name) >= 0)
        return error_op("whole-array reference to " + e.name +
                        " in executable expression");
      slot = create_scalar(e.name);
    }
    int32_t r = alloc_reg();
    emit({Op::LoadScalar, r, 0, 0, slot});
    return Operand::in_reg(r);
  }

  Operand unary(Op op, const Operand& v) {
    int32_t b = materialize(v);
    int32_t r = alloc_reg();
    emit({op, r, b});
    return Operand::in_reg(r);
  }

  Operand binary(Op op, const Operand& l, const Operand& r) {
    int32_t b = materialize(l);
    int32_t c = materialize(r);
    int32_t a = alloc_reg();
    emit({op, a, b, c});
    return Operand::in_reg(a);
  }

  // Fold when both sides are constant; an RtError during folding (integer
  // division by zero, MOD by zero) cancels the fold so the fault fires at
  // runtime, at the same point the tree-walker faults.
  template <typename Fn>
  Operand fold_or_binary(Op op, const Operand& l, const Operand& r, Fn fn) {
    if (l.is_const && r.is_const) {
      try {
        return Operand::constant(fn(l.cst, r.cst));
      } catch (const RtError&) {
      }
    }
    return binary(op, l, r);
  }

  Operand compile_binary(const fir::Expr& e) {
    using fir::BinOp;
    if (e.bin_op == BinOp::And || e.bin_op == BinOp::Or)
      return compile_logical(e);
    Operand l = compile_expr(*e.args[0]);
    Operand r = compile_expr(*e.args[1]);
    switch (e.bin_op) {
      case BinOp::Add: return fold_or_binary(Op::Add, l, r, rt_add);
      case BinOp::Sub: return fold_or_binary(Op::Sub, l, r, rt_sub);
      case BinOp::Mul: return fold_or_binary(Op::Mul, l, r, rt_mul);
      case BinOp::Div: return fold_or_binary(Op::Div, l, r, rt_div);
      case BinOp::Pow: return fold_or_binary(Op::PowOp, l, r, rt_pow);
      case BinOp::Eq: return fold_or_binary(Op::CmpEq, l, r, rt_eq);
      case BinOp::Ne: return fold_or_binary(Op::CmpNe, l, r, rt_ne);
      case BinOp::Lt: return fold_or_binary(Op::CmpLt, l, r, rt_lt);
      case BinOp::Le: return fold_or_binary(Op::CmpLe, l, r, rt_le);
      case BinOp::Gt: return fold_or_binary(Op::CmpGt, l, r, rt_gt);
      case BinOp::Ge: return fold_or_binary(Op::CmpGe, l, r, rt_ge);
      default: return error_op("unhandled binary operator");
    }
  }

  Operand compile_logical(const fir::Expr& e) {
    bool is_and = e.bin_op == fir::BinOp::And;
    Operand l = compile_expr(*e.args[0]);
    if (l.is_const) {
      // Short-circuit decided at compile time: the tree-walker would not
      // evaluate the right side either.
      if (is_and && !l.cst.truthy())
        return Operand::constant(RtVal::logical(false));
      if (!is_and && l.cst.truthy())
        return Operand::constant(RtVal::logical(true));
      Operand r = compile_expr(*e.args[1]);
      if (r.is_const) return Operand::constant(RtVal::logical(r.cst.truthy()));
      int32_t out = alloc_reg();
      emit({Op::Bool, out, r.reg});
      return Operand::in_reg(out);
    }
    int32_t out = alloc_reg();
    size_t skip =
        emit({is_and ? Op::JumpIfFalse : Op::JumpIfTrue, l.reg, 0, 0, 0});
    Operand r = compile_expr(*e.args[1]);
    int32_t rr = materialize(r);
    emit({Op::Bool, out, rr});
    size_t done = emit({Op::Jump});
    at(skip).d = here();
    emit({Op::LoadBool, out, 0, 0, is_and ? 0 : 1});
    at(done).d = here();
    return Operand::in_reg(out);
  }

  template <typename Fn>
  Operand fold_or_unary_call(Op op, const fir::Expr& e, Fn fn) {
    Operand a = compile_expr(*e.args[0]);
    if (a.is_const) {
      try {
        return Operand::constant(fn(a.cst));
      } catch (const RtError&) {
      }
    }
    return unary(op, a);
  }

  Operand compile_intrinsic(const fir::Expr& e) {
    const std::string& n = e.name;
    bool is_min = n == "MIN" || n == "MIN0" || n == "AMIN1";
    bool is_max = n == "MAX" || n == "MAX0" || n == "AMAX1";
    if (is_min || is_max) {
      if (e.args.empty() || !e.args[0])
        return error_op("unimplemented intrinsic " + n);
      std::vector<Operand> vs;
      vs.reserve(e.args.size());
      bool all_const = true;
      for (const auto& a : e.args) {
        if (!a) return error_op("unimplemented intrinsic " + n);
        vs.push_back(compile_expr(*a));
        all_const = all_const && vs.back().is_const;
      }
      if (all_const) {
        RtVal best = vs[0].cst;
        for (size_t i = 1; i < vs.size(); ++i)
          best = is_min ? rt_min_step(best, vs[i].cst)
                        : rt_max_step(best, vs[i].cst);
        return Operand::constant(best);
      }
      int32_t acc = alloc_reg();
      if (vs[0].is_const)
        emit({Op::LoadConst, acc, 0, 0, intern_const(vs[0].cst)});
      else
        emit({Op::Move, acc, vs[0].reg});
      for (size_t i = 1; i < vs.size(); ++i) {
        int32_t v = materialize(vs[i]);
        emit({is_min ? Op::MinStep : Op::MaxStep, acc, v});
      }
      return Operand::in_reg(acc);
    }
    auto need = [&](size_t k) {
      if (e.args.size() < k) return false;
      for (size_t i = 0; i < k; ++i)
        if (!e.args[i]) return false;
      return true;
    };
    if (n == "MOD" || n == "DMOD") {
      if (!need(2)) return error_op("unimplemented intrinsic " + n);
      Operand a = compile_expr(*e.args[0]);
      Operand b = compile_expr(*e.args[1]);
      return fold_or_binary(Op::ModOp, a, b, rt_mod);
    }
    if (n == "SIGN") {
      if (!need(2)) return error_op("unimplemented intrinsic " + n);
      Operand a = compile_expr(*e.args[0]);
      Operand b = compile_expr(*e.args[1]);
      return fold_or_binary(Op::SignOp, a, b, rt_sign);
    }
    if (!need(1)) return error_op("unimplemented intrinsic " + n);
    if (n == "ABS" || n == "DABS") return fold_or_unary_call(Op::AbsOp, e, rt_abs);
    if (n == "IABS") return fold_or_unary_call(Op::IntAbs, e, rt_iabs);
    if (n == "SQRT" || n == "DSQRT") return fold_or_unary_call(Op::Sqrt, e, rt_sqrt);
    if (n == "EXP" || n == "DEXP") return fold_or_unary_call(Op::ExpOp, e, rt_exp);
    if (n == "LOG" || n == "DLOG") return fold_or_unary_call(Op::LogOp, e, rt_log);
    if (n == "SIN") return fold_or_unary_call(Op::Sin, e, rt_sin);
    if (n == "COS") return fold_or_unary_call(Op::Cos, e, rt_cos);
    if (n == "TAN") return fold_or_unary_call(Op::Tan, e, rt_tan);
    if (n == "DBLE" || n == "REAL" || n == "FLOAT")
      return fold_or_unary_call(Op::ToReal, e, rt_toreal);
    if (n == "INT") return fold_or_unary_call(Op::ToInt, e, rt_toint);
    if (n == "NINT") return fold_or_unary_call(Op::Nint, e, rt_nint);
    return error_op("unimplemented intrinsic " + n);
  }

  // Compile the subscripts of an ArrayRef into an access descriptor.
  // Returns -1 after emitting an Error instruction (missing subscript or
  // rank beyond kMaxRank).
  int32_t compile_access(const fir::Expr& e) {
    AccessDesc desc;
    desc.array_slot = find_array(e.name);
    desc.rank = static_cast<int32_t>(e.args.size());
    if (desc.rank > kMaxRank) {
      error_op("subscript out of bounds: " + e.name + "(...)");
      return -1;
    }
    for (size_t i = 0; i < e.args.size(); ++i) {
      if (!e.args[i]) {
        error_op("missing subscript for " + e.name);
        return -1;
      }
      Operand s = compile_expr(*e.args[i]);
      desc.subs[i] = s.is_const ? SubRef{-1, s.cst.as_int()}
                                : SubRef{materialize(s), 0};
    }
    int32_t id = static_cast<int32_t>(m_.accesses.size());
    m_.accesses.push_back(desc);
    return id;
  }

  // ---- statements ---------------------------------------------------------

  void compile_stmt(const fir::Stmt& s) {
    int32_t reg_mark = next_reg_;
    emit({Op::Charge});
    using fir::StmtKind;
    switch (s.kind) {
      case StmtKind::Assign: compile_assign(s); break;
      case StmtKind::TupleAssign:
        error_op("tuple assignment reached execution");
        break;
      case StmtKind::Do: compile_do(s); break;
      case StmtKind::If: compile_if(s); break;
      case StmtKind::Call: compile_call(s); break;
      case StmtKind::Write: compile_write(s); break;
      case StmtKind::Stop:
        emit({Op::Stop, 0, 0, 0, intern_string(s.name)});
        break;
      case StmtKind::Return:
        if (loops_.empty()) {
          emit({Op::Ret});
        } else {
          const LoopCtx& l = loops_.back();
          emit({Op::ReturnInDo, 0, 0, l.omp ? 1 : 0, l.body_start});
        }
        break;
      case StmtKind::Continue: break;
      case StmtKind::TaggedRegion:
        error_op(
            "tagged annotation region reached execution: reverse inlining "
            "did not run before interpretation");
        break;
    }
    next_reg_ = reg_mark;
  }

  void compile_assign(const fir::Stmt& s) {
    Operand v = compile_expr(*s.rhs);
    const fir::Expr& lhs = *s.lhs[0];
    if (lhs.kind == fir::ExprKind::VarRef) {
      int32_t slot = find_scalar(lhs.name);
      if (slot < 0) {
        if (find_array(lhs.name) >= 0) {
          error_op("whole-array assignment to " + lhs.name +
                   " in executable code");
          return;
        }
        slot = create_scalar(lhs.name);
      }
      emit({Op::StoreScalar, materialize(v), 0, 0, slot});
      return;
    }
    if (lhs.kind == fir::ExprKind::ArrayRef) {
      if (find_array(lhs.name) < 0) {
        error_op("assignment to undeclared array " + lhs.name);
        return;
      }
      int32_t src = materialize(v);
      int32_t desc = compile_access(lhs);
      if (desc < 0) return;
      emit({Op::StoreElem, src, 0, 0, desc});
      return;
    }
    error_op("unsupported assignment target");
  }

  void compile_if(const fir::Stmt& s) {
    Operand cond = compile_expr(*s.cond);
    if (cond.is_const) {
      const auto& taken = cond.cst.truthy() ? s.body : s.else_body;
      for (const auto& st : taken)
        if (st) compile_stmt(*st);
      return;
    }
    size_t jf = emit({Op::JumpIfFalse, cond.reg, 0, 0, 0});
    for (const auto& st : s.body)
      if (st) compile_stmt(*st);
    if (!s.else_body.empty()) {
      size_t done = emit({Op::Jump});
      at(jf).d = here();
      for (const auto& st : s.else_body)
        if (st) compile_stmt(*st);
      at(done).d = here();
    } else {
      at(jf).d = here();
    }
  }

  // Convert a DO bound to its integer value (eval(...).as_int()).
  int32_t int_bound_reg(const Operand& o) {
    if (o.is_const) {
      int32_t r = alloc_reg();
      emit({Op::LoadConst, r, 0, 0,
            intern_const(RtVal::integer(o.cst.as_int()))});
      return r;
    }
    int32_t r = alloc_reg();
    emit({Op::ToInt, r, o.reg});
    return r;
  }

  void compile_do(const fir::Stmt& s) {
    Operand lo = compile_expr(*s.do_lo);
    Operand hi = compile_expr(*s.do_hi);
    Operand step = s.do_step ? compile_expr(*s.do_step)
                             : Operand::constant(RtVal::integer(1));
    int32_t r_i = int_bound_reg(lo);  // doubles as the running i
    int32_t r_hi = int_bound_reg(hi);
    int32_t r_step = int_bound_reg(step);
    emit({Op::CheckStep, r_step});

    int32_t iv = find_scalar(s.do_var);
    if (iv < 0) iv = create_scalar(s.do_var);

    int32_t pardo = -1;
    if (s.omp.parallel) {
      pardo = static_cast<int32_t>(cu_.pardos.size());
      cu_.pardos.emplace_back();
      emit({Op::ParDo, r_i, r_hi, r_step, pardo});
    }

    int32_t head = here();
    size_t test = emit({Op::LoopTest, r_i, r_hi, r_step, 0});
    emit({Op::StoreRaw, r_i, 0, 0, iv});
    int32_t body_start = here();
    loops_.push_back({body_start, s.omp.parallel});
    for (const auto& st : s.body)
      if (st) compile_stmt(*st);
    loops_.pop_back();
    int32_t body_end = here();
    emit({Op::LoopNext, r_i, 0, r_step, head});
    int32_t exit = here();
    at(test).d = exit;

    if (pardo >= 0) {
      ParDoPlan& plan = cu_.pardos[static_cast<size_t>(pardo)];
      plan.body_start = body_start;
      plan.body_end = body_end;
      plan.exit_pc = exit;
      plan.iv_slot = iv;
      for (const auto& p : s.omp.privates) {
        PrivateSpec spec;
        int32_t aslot = find_array(p);
        if (aslot >= 0) {
          spec.is_array = true;
          spec.slot = aslot;
          spec.common_key = cu_.arrays[static_cast<size_t>(aslot)].common_key;
        } else {
          int32_t sslot = find_scalar(p);
          if (sslot < 0) sslot = create_scalar(p);
          spec.slot = sslot;
          spec.common_key = cu_.scalars[static_cast<size_t>(sslot)].common_key;
        }
        plan.privates.push_back(spec);
      }
      for (const auto& r : s.omp.reductions) {
        ReductionSpec spec;
        int32_t slot = find_scalar(r.var);
        if (slot < 0) slot = create_scalar(r.var);
        spec.slot = slot;
        spec.op = r.op == "*" ? RedOp::Prod
                  : r.op == "MIN" ? RedOp::Min
                  : r.op == "MAX" ? RedOp::Max
                                  : RedOp::Sum;
        plan.reductions.push_back(spec);
      }
    }
  }

  void compile_call(const fir::Stmt& s) {
    auto ci = unit_index_.find(s.name);
    if (ci == unit_index_.end()) {
      error_op("CALL to undefined subroutine " + s.name);
      return;
    }
    const fir::ProgramUnit& callee = *prog_.units[static_cast<size_t>(ci->second)];
    if (callee.params.size() != s.args.size()) {
      error_op("argument count mismatch calling " + s.name);
      return;
    }
    CallPlan plan;
    plan.callee = ci->second;
    for (size_t i = 0; i < callee.params.size(); ++i) {
      std::string formal = fold_upper(callee.params[i]);
      const fir::VarDecl* fd = callee.find_decl(formal);
      bool formal_array = fd && !fd->dims.empty();
      const fir::Expr& actual = *s.args[i];
      CallArg arg;
      if (formal_array) {
        if (actual.kind == fir::ExprKind::VarRef) {
          int32_t aslot = find_array(actual.name);
          if (aslot < 0) {
            error_op("actual " + actual.name + " for array formal " + formal +
                     " is not an array");
            return;
          }
          arg.kind = ArgKind::ArrayWhole;
          arg.slot = aslot;
        } else if (actual.kind == fir::ExprKind::ArrayRef) {
          int32_t aslot = find_array(actual.name);
          if (aslot < 0) {
            error_op("actual array " + actual.name + " unknown");
            return;
          }
          int32_t desc = compile_access(actual);
          if (desc < 0) return;
          int32_t addr = alloc_reg();
          emit({Op::Addr, addr, 0, 0, desc});
          arg.kind = ArgKind::ArrayElem;
          arg.slot = aslot;
          arg.reg = addr;
        } else {
          error_op("cannot pass expression to array formal " + formal);
          return;
        }
      } else {
        if (actual.kind == fir::ExprKind::VarRef) {
          int32_t slot = find_scalar(actual.name);
          if (slot < 0) slot = create_scalar(actual.name);
          arg.kind = ArgKind::ScalarPtr;
          arg.slot = slot;
        } else if (actual.kind == fir::ExprKind::ArrayRef) {
          int32_t aslot = find_array(actual.name);
          if (aslot < 0) {
            error_op("actual array " + actual.name + " unknown");
            return;
          }
          int32_t desc = compile_access(actual);
          if (desc < 0) return;
          int32_t addr = alloc_reg();
          emit({Op::Addr, addr, 0, 0, desc});
          arg.kind = ArgKind::ScalarElem;
          arg.slot = aslot;
          arg.reg = addr;
        } else {
          Operand v = compile_expr(actual);
          arg.kind = ArgKind::ScalarValue;
          arg.reg = materialize(v);
        }
      }
      plan.args.push_back(arg);
    }
    int32_t id = static_cast<int32_t>(cu_.calls.size());
    cu_.calls.push_back(std::move(plan));
    emit({Op::Call, 0, 0, 0, id});
  }

  void compile_write(const fir::Stmt& s) {
    WritePlan plan;
    for (const auto& a : s.args) {
      WriteItem item;
      if (a->kind == fir::ExprKind::StrLit) {
        item.str = intern_string(a->str_val);
      } else {
        Operand v = compile_expr(*a);
        item.reg = materialize(v);
      }
      plan.items.push_back(item);
    }
    int32_t id = static_cast<int32_t>(cu_.writes.size());
    cu_.writes.push_back(std::move(plan));
    emit({Op::Write, 0, 0, 0, id});
  }
};

}  // namespace

Module compile(const fir::Program& prog) {
  Module m;
  std::map<std::string, int32_t> unit_index;
  for (size_t i = 0; i < prog.units.size(); ++i)
    unit_index.emplace(prog.units[i]->name, static_cast<int32_t>(i));

  m.units.resize(prog.units.size());
  for (size_t i = 0; i < prog.units.size(); ++i) {
    UnitCompiler uc(m, prog, unit_index, *prog.units[i], m.units[i]);
    uc.run();
    if (prog.units[i]->kind == fir::UnitKind::Program)
      m.main_unit = static_cast<int32_t>(i);
  }
  return m;
}

}  // namespace ap::interp::bc
