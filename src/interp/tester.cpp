#include "interp/tester.h"

#include <cmath>

namespace ap::interp {

namespace {

bool close(double a, double b, double rel_tol) {
  if (a == b) return true;
  double diff = std::fabs(a - b);
  double scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= rel_tol * std::max(scale, 1.0);
}

}  // namespace

TestVerdict compare_serial_parallel(const fir::Program& prog, int num_threads,
                                    double rel_tol, int64_t max_steps) {
  TestVerdict verdict;

  InterpOptions serial_opts;
  serial_opts.num_threads = 1;
  serial_opts.enable_parallel = false;
  serial_opts.max_steps = max_steps;
  Interpreter serial(prog, serial_opts);
  verdict.serial = serial.run();
  if (!verdict.serial.ok) {
    verdict.detail = "serial run failed: " + verdict.serial.error;
    return verdict;
  }

  InterpOptions par_opts;
  par_opts.num_threads = num_threads;
  par_opts.enable_parallel = true;
  par_opts.max_steps = max_steps;
  Interpreter parallel(prog, par_opts);
  verdict.parallel = parallel.run();
  if (!verdict.parallel.ok) {
    verdict.detail = "parallel run failed: " + verdict.parallel.error;
    return verdict;
  }

  if (verdict.serial.stopped != verdict.parallel.stopped) {
    verdict.detail = "STOP behaviour differs between serial and parallel runs";
    return verdict;
  }

  auto sa = serial.globals().snapshot_arrays();
  auto pa = parallel.globals().snapshot_arrays();
  for (const auto& [key, sdata] : sa) {
    auto it = pa.find(key);
    if (it == pa.end() || it->second.size() != sdata.size()) {
      verdict.detail = "array " + key + " missing or resized in parallel run";
      return verdict;
    }
    for (size_t i = 0; i < sdata.size(); ++i) {
      if (!close(sdata[i], it->second[i], rel_tol)) {
        verdict.detail = "array " + key + "[" + std::to_string(i) +
                         "]: serial=" + std::to_string(sdata[i]) +
                         " parallel=" + std::to_string(it->second[i]);
        return verdict;
      }
    }
  }
  auto ss = serial.globals().snapshot_scalars();
  auto ps = parallel.globals().snapshot_scalars();
  for (const auto& [key, v] : ss) {
    auto it = ps.find(key);
    if (it == ps.end() || !close(v, it->second, rel_tol)) {
      verdict.detail = "scalar " + key + ": serial=" + std::to_string(v) +
                       " parallel=" +
                       (it == ps.end() ? "<missing>" : std::to_string(it->second));
      return verdict;
    }
  }

  verdict.passed = true;
  verdict.detail = "serial and parallel states match";
  return verdict;
}

}  // namespace ap::interp
