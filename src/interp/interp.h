// Tree-walking interpreter for the F77 subset with OpenMP execution.
//
// This is the substitute for the paper's gfortran/ifort + multicore testbed
// (DESIGN.md §2): it executes the final, reverse-inlined program — original
// calls restored, OpenMP metadata on parallelized DO loops — either
// serially or with a work-sharing thread pool, which is what bench_fig20
// measures speedups on.
//
// OpenMP semantics implemented: PARALLEL DO with contiguous chunking,
// PRIVATE (copy-in at region entry, last-iteration copy-out so sequential
// final values are preserved — the paper's Polaris peels the last iteration
// for the same effect, §III.B.4), and REDUCTION(+,*,MIN,MAX). Privatized
// COMMON variables are redirected through a per-thread override table so
// subroutines CALLed inside the parallel loop see the thread's private copy
// (the runtime analogue of THREADPRIVATE, required because privatized
// temporaries like XY live in COMMON and are touched only inside callees).
//
// Nested parallel loops execute serially inside an active region (the
// default OpenMP behaviour on the paper's machines).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "fir/ast.h"
#include "interp/storage.h"

namespace ap::interp {

struct InterpOptions {
  int num_threads = 1;
  bool enable_parallel = true;   // false: ignore OMP metadata entirely
  int64_t max_steps = 2'000'000'000;  // runaway-loop guard (per program run)
  bool check_bounds = true;
};

struct RunResult {
  bool ok = false;
  bool stopped = false;        // program executed STOP
  std::string stop_message;
  std::string error;           // runtime error description when !ok
  std::string output;          // accumulated WRITE output
  uint64_t statements_executed = 0;
  // Statements executed inside OMP-parallel regions (by all threads). The
  // ratio to statements_executed is a machine-independent "parallel
  // coverage" metric used by bench_fig20 alongside wall-clock speedup —
  // wall-clock scaling needs physical cores, coverage does not.
  uint64_t statements_in_parallel = 0;
};

class Interpreter {
 public:
  Interpreter(const fir::Program& prog, InterpOptions opts);
  ~Interpreter();

  RunResult run();

  GlobalStore& globals() { return *globals_; }
  const GlobalStore& globals() const { return *globals_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::unique_ptr<GlobalStore> globals_;
};

}  // namespace ap::interp
