// Tree-walking interpreter for the F77 subset with OpenMP execution.
//
// This is the substitute for the paper's gfortran/ifort + multicore testbed
// (DESIGN.md §2): it executes the final, reverse-inlined program — original
// calls restored, OpenMP metadata on parallelized DO loops — either
// serially or with a work-sharing thread pool, which is what bench_fig20
// measures speedups on.
//
// OpenMP semantics implemented: PARALLEL DO with contiguous chunking,
// PRIVATE (copy-in at region entry, last-iteration copy-out so sequential
// final values are preserved — the paper's Polaris peels the last iteration
// for the same effect, §III.B.4), and REDUCTION(+,*,MIN,MAX). Privatized
// COMMON variables are redirected through a per-thread override table so
// subroutines CALLed inside the parallel loop see the thread's private copy
// (the runtime analogue of THREADPRIVATE, required because privatized
// temporaries like XY live in COMMON and are touched only inside callees).
//
// Nested parallel loops execute serially inside an active region (the
// default OpenMP behaviour on the paper's machines).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "fir/ast.h"
#include "interp/storage.h"

namespace ap::interp {

namespace bc {
struct Module;
}

// Execution engine selection. Bytecode (the default) compiles the program
// to a slot-resolved register IR at Interpreter construction and runs it on
// the VM in vm.h; Tree is the original AST walker, kept as the reference
// implementation (the two are differentially tested against each other).
enum class Engine : uint8_t { Tree, Bytecode };

struct InterpOptions {
  int num_threads = 1;
  bool enable_parallel = true;   // false: ignore OMP metadata entirely
  int64_t max_steps = 2'000'000'000;  // runaway-loop guard (per program run)
  bool check_bounds = true;
  Engine engine = Engine::Bytecode;
};

struct RunResult {
  bool ok = false;
  bool stopped = false;        // program executed STOP
  std::string stop_message;
  std::string error;           // runtime error description when !ok
  std::string output;          // accumulated WRITE output
  uint64_t statements_executed = 0;
  // Statements executed inside OMP-parallel regions (by all threads). The
  // ratio to statements_executed is a machine-independent "parallel
  // coverage" metric used by bench_fig20 alongside wall-clock speedup —
  // wall-clock scaling needs physical cores, coverage does not.
  uint64_t statements_in_parallel = 0;
  // Bytecode engine only: instructions dispatched by the VM and the
  // AST-to-bytecode compile time. Both stay 0 under Engine::Tree, and
  // neither participates in engine differential comparisons.
  uint64_t instructions_executed = 0;
  double bytecode_compile_ms = 0.0;
};

class Interpreter {
 public:
  Interpreter(const fir::Program& prog, InterpOptions opts);
  ~Interpreter();

  RunResult run();

  GlobalStore& globals() { return *globals_; }
  const GlobalStore& globals() const { return *globals_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;        // tree-walking engine
  std::unique_ptr<bc::Module> module_;  // bytecode engine
  double compile_ms_ = 0.0;
  InterpOptions opts_;
  std::unique_ptr<GlobalStore> globals_;
};

}  // namespace ap::interp
