#include "interp/storage.h"

namespace ap::interp {

ArrayStore::ArrayStore(fir::Type type, std::vector<int64_t> lower,
                       std::vector<int64_t> extent)
    : type_(type), lower_(std::move(lower)), extent_(std::move(extent)) {
  int64_t n = 1;
  for (int64_t e : extent_) n *= (e > 0 ? e : 1);
  data_.assign(static_cast<size_t>(n), 0.0);
}

std::optional<int64_t> ArrayStore::linear_offset(
    const std::vector<int64_t>& subs) const {
  if (subs.size() != extent_.size()) return std::nullopt;
  int64_t off = 0, stride = 1;
  for (size_t d = 0; d < subs.size(); ++d) {
    int64_t rel = subs[d] - lower_[d];
    if (rel < 0 || rel >= extent_[d]) return std::nullopt;
    off += rel * stride;
    stride *= extent_[d];
  }
  return off;
}

std::optional<int64_t> ArrayView::cell(const std::vector<int64_t>& subs) const {
  if (subs.size() != extent.size()) return std::nullopt;
  int64_t off = base, stride = 1;
  for (size_t d = 0; d < subs.size(); ++d) {
    int64_t rel = subs[d] - lower[d];
    if (rel < 0) return std::nullopt;
    // extent -1 = assumed size (legal only in the last dimension): the
    // upper bound check falls back to the underlying store size below.
    if (extent[d] >= 0 && rel >= extent[d]) return std::nullopt;
    off += rel * stride;
    stride *= (extent[d] >= 0 ? extent[d] : 1);
  }
  if (off < 0 || off >= static_cast<int64_t>(store->size())) return std::nullopt;
  return off;
}

std::shared_ptr<ArrayStore> GlobalStore::get_or_create_array(
    const std::string& key, fir::Type type, std::vector<int64_t> lower,
    std::vector<int64_t> extent) {
  auto it = arrays_.find(key);
  if (it != arrays_.end()) return it->second;
  auto st = std::make_shared<ArrayStore>(type, std::move(lower), std::move(extent));
  arrays_[key] = st;
  return st;
}

double* GlobalStore::get_or_create_scalar(const std::string& key, bool is_int) {
  auto it = scalars_.find(key);
  if (it != scalars_.end()) return it->second.get();
  auto cell = std::make_unique<double>(0.0);
  double* p = cell.get();
  scalars_[key] = std::move(cell);
  scalar_int_[key] = is_int;
  return p;
}

bool GlobalStore::scalar_is_int(const std::string& key) const {
  auto it = scalar_int_.find(key);
  return it != scalar_int_.end() && it->second;
}

std::map<std::string, std::vector<double>> GlobalStore::snapshot_arrays() const {
  std::map<std::string, std::vector<double>> out;
  for (const auto& [k, v] : arrays_) out[k] = v->raw();
  return out;
}

std::map<std::string, double> GlobalStore::snapshot_scalars() const {
  std::map<std::string, double> out;
  for (const auto& [k, v] : scalars_) out[k] = *v;
  return out;
}

}  // namespace ap::interp
