// Runtime storage model for the F77-subset interpreter.
//
// All numeric cells are stored as double with a static "integer" tag taken
// from declarations (Fortran INTEGERs in the mini-suite stay far below
// 2^53, so doubles represent them exactly; integer division/MOD semantics
// are applied based on the tag). Arrays are column-major, contiguous, with
// per-dimension lower bounds, matching Fortran storage sequence — which is
// what makes element-base argument passing (CALL F(T(IX(7))) viewing a
// region of T) behave exactly like the real thing.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fir/ast.h"

namespace ap::interp {

struct RtVal {
  double v = 0.0;
  bool is_int = false;

  int64_t as_int() const { return static_cast<int64_t>(v); }
  static RtVal real(double d) { return RtVal{d, false}; }
  static RtVal integer(int64_t i) { return RtVal{static_cast<double>(i), true}; }
  static RtVal logical(bool b) { return RtVal{b ? 1.0 : 0.0, true}; }
  bool truthy() const { return v != 0.0; }
};

class ArrayStore {
 public:
  ArrayStore(fir::Type type, std::vector<int64_t> lower,
             std::vector<int64_t> extent);

  fir::Type elem_type() const { return type_; }
  size_t rank() const { return extent_.size(); }
  int64_t lower(size_t d) const { return lower_[d]; }
  int64_t extent(size_t d) const { return extent_[d]; }
  size_t size() const { return data_.size(); }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  // Linear offset of a subscript tuple (no bounds adjustment for views).
  // Returns nullopt when out of bounds.
  std::optional<int64_t> linear_offset(const std::vector<int64_t>& subs) const;

  std::vector<double>& raw() { return data_; }
  const std::vector<double>& raw() const { return data_; }

 private:
  fir::Type type_;
  std::vector<int64_t> lower_, extent_;
  std::vector<double> data_;
};

// A view into an ArrayStore: base linear offset (element-base argument
// passing) plus the viewing unit's own shape declaration.
struct ArrayView {
  std::shared_ptr<ArrayStore> store;
  int64_t base = 0;                  // linear offset of view element (1,..,1)
  std::vector<int64_t> lower, extent;  // viewer's shape; extent -1 = assumed (*)
  bool is_int = false;

  // Linear cell index for a subscript tuple under the VIEW shape. Checked
  // against the underlying store size.
  std::optional<int64_t> cell(const std::vector<int64_t>& subs) const;
};

// A scalar cell reference: either into a frame-local slot or an array
// element; resolved to a raw pointer (stable storage guaranteed by the
// owners).
struct ScalarRef {
  double* cell = nullptr;
  bool is_int = false;
};

// Global (COMMON) storage shared by all frames and threads. Keyed by
// "BLOCK/NAME". Creation is single-threaded (program setup); parallel
// phases only read the map structure.
class GlobalStore {
 public:
  std::shared_ptr<ArrayStore> get_or_create_array(const std::string& key,
                                                  fir::Type type,
                                                  std::vector<int64_t> lower,
                                                  std::vector<int64_t> extent);
  double* get_or_create_scalar(const std::string& key, bool is_int);
  bool scalar_is_int(const std::string& key) const;

  // State snapshot/compare for the runtime tester.
  std::map<std::string, std::vector<double>> snapshot_arrays() const;
  std::map<std::string, double> snapshot_scalars() const;

 private:
  std::map<std::string, std::shared_ptr<ArrayStore>> arrays_;
  std::map<std::string, std::unique_ptr<double>> scalars_;
  std::map<std::string, bool> scalar_int_;
};

}  // namespace ap::interp
