// Executor for the bytecode IR. interp.cpp is the reference implementation;
// every observable behaviour here (values, error messages, statement
// counters, OMP privatization rules) mirrors it exactly.
#include "interp/vm.h"

#include <atomic>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "support/thread_pool.h"

namespace ap::interp::bc {

namespace {

// Per-thread execution state. Privatization overrides are dense vectors
// indexed by the module's COMMON key ids — the slot-indirection replacement
// for the tree-walker's string-keyed override maps.
struct VmCtx {
  std::vector<double*> scalar_ov;
  std::vector<std::shared_ptr<ArrayStore>> array_ov;
  bool in_parallel = false;
  int64_t steps_left = 0;
  int32_t par_body = -1;  // body_start of the actively chunked loop
  uint64_t insns = 0;

  void charge() {
    if (--steps_left <= 0)
      throw RtError{"statement budget exhausted (runaway loop?)"};
  }
};

// Frame-resident array state: the ArrayView equivalent, with the viewer's
// shape unpacked into fixed arrays so the offset loop never chases vectors.
struct ArrayRec {
  std::shared_ptr<ArrayStore> store;
  double* data = nullptr;
  int64_t base = 0;
  int32_t rank = 0;
  bool is_int = false;
  std::array<int64_t, kMaxRank> lower{};
  std::array<int64_t, kMaxRank> extent{};  // -1 = assumed size
};

// One frame: cell pointers per scalar slot (locals point into `cells`,
// COMMONs into the global store or an override, formals wherever the caller
// bound them) plus one array record per array slot.
struct VmFrame {
  const CompiledUnit* cu = nullptr;
  std::vector<double*> scalar;
  std::vector<uint8_t> scalar_int;
  std::vector<ArrayRec> arrays;
  std::vector<double> cells;  // backing storage, one cell per scalar slot
};

double red_identity(RedOp op) {
  switch (op) {
    case RedOp::Prod: return 1.0;
    case RedOp::Min: return std::numeric_limits<double>::infinity();
    case RedOp::Max: return -std::numeric_limits<double>::infinity();
    case RedOp::Sum: break;
  }
  return 0.0;
}

std::string format_val(RtVal v) {
  return v.is_int ? std::to_string(v.as_int()) : std::to_string(v.v);
}

class Executor {
 public:
  Executor(const Module& m, const InterpOptions& opts, GlobalStore& globals)
      : m_(m), opts_(opts), globals_(globals) {
    if (opts_.num_threads > 1 && opts_.enable_parallel)
      pool_ = std::make_unique<ThreadPool>(opts_.num_threads);
  }

  RunResult run(double compile_ms) {
    RunResult result;
    result.bytecode_compile_ms = compile_ms;
    if (m_.main_unit < 0) {
      result.error = "no PROGRAM unit";
      return result;
    }
    VmCtx ctx;
    ctx.steps_left = opts_.max_steps;
    ctx.scalar_ov.assign(m_.keys.size(), nullptr);
    ctx.array_ov.assign(m_.keys.size(), nullptr);
    try {
      const CompiledUnit& cu = m_.units[static_cast<size_t>(m_.main_unit)];
      VmFrame f;
      init_frame(f, cu, ctx);
      run_unit(cu, f, ctx);
      result.ok = true;
    } catch (const RtStop& e) {
      result.ok = true;
      result.stopped = true;
      result.stop_message = e.message;
    } catch (const RtError& e) {
      result.error = e.message;
    }
    result.output = output_;
    uint64_t par = parallel_steps_.load(std::memory_order_relaxed);
    result.statements_in_parallel = par;
    result.statements_executed =
        static_cast<uint64_t>(opts_.max_steps - ctx.steps_left) + par;
    result.instructions_executed =
        ctx.insns + parallel_insns_.load(std::memory_order_relaxed);
    return result;
  }

 private:
  const Module& m_;
  InterpOptions opts_;
  GlobalStore& globals_;
  std::unique_ptr<ThreadPool> pool_;
  std::mutex output_mu_;
  std::string output_;
  std::atomic<uint64_t> parallel_steps_{0};
  std::atomic<uint64_t> parallel_insns_{0};

  // ---- frames -------------------------------------------------------------

  void init_frame(VmFrame& f, const CompiledUnit& cu, VmCtx& ctx) {
    f.cu = &cu;
    size_t ns = cu.scalars.size();
    f.cells.assign(ns, 0.0);
    f.scalar.resize(ns);
    f.scalar_int.resize(ns);
    for (size_t i = 0; i < ns; ++i) {
      const ScalarSlot& s = cu.scalars[i];
      if (s.kind == ScalarKind::Common) {
        double* ov = ctx.scalar_ov[static_cast<size_t>(s.common_key)];
        f.scalar[i] =
            ov ? ov
               : globals_.get_or_create_scalar(
                     m_.keys[static_cast<size_t>(s.common_key)], s.is_int);
      } else {
        f.scalar[i] = &f.cells[i];
      }
      f.scalar_int[i] = s.is_int ? 1 : 0;
    }
    f.arrays.assign(cu.arrays.size(), ArrayRec{});
  }

  void run_unit(const CompiledUnit& cu, VmFrame& f, VmCtx& ctx) {
    std::vector<RtVal> regs(static_cast<size_t>(cu.num_regs));
    exec_range(cu, f, ctx, regs.data(), cu.prologue, 0,
               static_cast<int32_t>(cu.prologue.size()));
    exec_range(cu, f, ctx, regs.data(), cu.code, 0,
               static_cast<int32_t>(cu.code.size()));
  }

  // ---- arrays -------------------------------------------------------------

  static int64_t sub_value(const SubRef& s, const RtVal* r) {
    return s.reg >= 0 ? static_cast<int64_t>(r[s.reg].v) : s.cst;
  }

  // Evaluate one declared shape (DimSpecs referencing prologue registers).
  static void eval_dims(const ArraySlot& as, const RtVal* r,
                        std::array<int64_t, kMaxRank>& lower,
                        std::array<int64_t, kMaxRank>& extent) {
    for (size_t i = 0; i < as.dims.size(); ++i) {
      const DimSpec& dm = as.dims[i];
      int64_t lo = sub_value(dm.lo, r);
      int64_t ext = -1;
      if (dm.has_hi) ext = sub_value(dm.hi, r) - lo + 1;
      lower[i] = lo;
      extent[i] = ext;
    }
  }

  void make_array(const CompiledUnit& cu, VmFrame& f, VmCtx& ctx,
                  const RtVal* r, int32_t slot) {
    const ArraySlot& as = cu.arrays[static_cast<size_t>(slot)];
    ArrayRec& rec = f.arrays[static_cast<size_t>(slot)];
    size_t n = as.dims.size();
    std::array<int64_t, kMaxRank> lower{}, extent{};
    eval_dims(as, r, lower, extent);
    std::shared_ptr<ArrayStore> store;
    if (as.kind == ArrayKind::Common) {
      store = ctx.array_ov[static_cast<size_t>(as.common_key)];
      if (!store) {
        // Assumed-size COMMON arrays are illegal; treat extent -1 as 1.
        std::vector<int64_t> lo(lower.begin(), lower.begin() + n);
        std::vector<int64_t> ce(extent.begin(), extent.begin() + n);
        for (auto& e : ce)
          if (e < 0) e = 1;
        store = globals_.get_or_create_array(
            m_.keys[static_cast<size_t>(as.common_key)], as.type,
            std::move(lo), std::move(ce));
      }
    } else {
      for (size_t i = 0; i < n; ++i)
        if (extent[i] < 0)
          throw RtError{"local array " + as.name + " has assumed size"};
      store = std::make_shared<ArrayStore>(
          as.type, std::vector<int64_t>(lower.begin(), lower.begin() + n),
          std::vector<int64_t>(extent.begin(), extent.begin() + n));
    }
    rec.store = std::move(store);
    rec.data = rec.store->data();
    rec.base = 0;
    rec.rank = static_cast<int32_t>(n);
    rec.is_int = as.is_int;
    rec.lower = lower;
    rec.extent = extent;
  }

  void reshape(const CompiledUnit& cu, VmFrame& f, const RtVal* r,
               int32_t slot) {
    const ArraySlot& as = cu.arrays[static_cast<size_t>(slot)];
    ArrayRec& rec = f.arrays[static_cast<size_t>(slot)];
    if (!rec.store)
      throw RtError{"array parameter " + as.name + " of " + cu.name +
                    " was not bound (argument mismatch)"};
    eval_dims(as, r, rec.lower, rec.extent);
    rec.rank = static_cast<int32_t>(as.dims.size());
    rec.is_int = as.is_int;
  }

  [[noreturn]] static void oob_error(const std::string& name,
                                     const int64_t* subs, int32_t rank) {
    std::string s = name + "(";
    for (int32_t i = 0; i < rank; ++i)
      s += (i ? "," : "") + std::to_string(subs[i]);
    throw RtError{"subscript out of bounds: " + s + ")"};
  }

  // Checked linear offset of an access (ArrayView::cell semantics).
  static int64_t access_offset(const AccessDesc& acc, const ArrayRec& rec,
                               const RtVal* r, const std::string& name) {
    int64_t subs[kMaxRank];
    for (int32_t i = 0; i < acc.rank; ++i) subs[i] = sub_value(acc.subs[i], r);
    if (acc.rank == rec.rank) {
      int64_t off = rec.base, stride = 1;
      int32_t d = 0;
      for (; d < acc.rank; ++d) {
        int64_t rel = subs[d] - rec.lower[d];
        int64_t e = rec.extent[d];
        if (rel < 0 || (e >= 0 && rel >= e)) break;
        off += rel * stride;
        stride *= e >= 0 ? e : 1;
      }
      if (d == acc.rank && off >= 0 &&
          off < static_cast<int64_t>(rec.store->size()))
        return off;
    }
    oob_error(name, subs, acc.rank);
  }

  // ---- parallel DO --------------------------------------------------------

  void run_pardo(const CompiledUnit& cu, VmFrame& f, VmCtx& ctx,
                 const ParDoPlan& plan, int64_t lo, int64_t hi) {
    int nthreads = pool_->size();
    // Per-thread private storage, for copy-out by the last-chunk thread.
    // Vectors stay empty for threads that never ran (like the tree-walker's
    // empty PrivateSet maps).
    struct Priv {
      std::vector<double> scalar_values;                  // per plan.privates
      std::vector<std::shared_ptr<ArrayStore>> arrays;    // per plan.privates
      std::vector<double> reductions;                     // per plan.reductions
    };
    std::vector<Priv> privs(static_cast<size_t>(nthreads));
    int last_chunk_thread = -1;
    std::mutex red_mu;

    pool_->parallel_for(lo, hi, [&](int64_t clo, int64_t chi, int tid) {
      Priv& mine = privs[static_cast<size_t>(tid)];
      // Thread-local context: copy overrides, set nesting flag, share the
      // step budget approximately (each thread gets the full remainder; the
      // guard is about runaway loops, not precise accounting).
      VmCtx tctx;
      tctx.in_parallel = true;
      tctx.steps_left = ctx.steps_left;
      tctx.scalar_ov = ctx.scalar_ov;
      tctx.array_ov = ctx.array_ov;
      tctx.par_body = plan.body_start;

      // Shadow frame: shared cell pointers plus private replacements. The
      // deque gives the private cells stable addresses.
      VmFrame shadow;
      shadow.cu = f.cu;
      shadow.scalar = f.scalar;
      shadow.scalar_int = f.scalar_int;
      shadow.arrays = f.arrays;
      std::deque<double> priv_cells;

      mine.arrays.assign(plan.privates.size(), nullptr);
      mine.scalar_values.assign(plan.privates.size(), 0.0);

      for (const PrivateSpec& p : plan.privates) {
        if (p.is_array) {
          ArrayRec& rec = shadow.arrays[static_cast<size_t>(p.slot)];
          auto priv_store = std::make_shared<ArrayStore>(*rec.store);
          rec.store = priv_store;
          rec.data = priv_store->data();
          if (p.common_key >= 0)
            tctx.array_ov[static_cast<size_t>(p.common_key)] = priv_store;
          mine.arrays[static_cast<size_t>(&p - plan.privates.data())] =
              priv_store;
        } else {
          priv_cells.push_back(*shadow.scalar[static_cast<size_t>(p.slot)]);
          shadow.scalar[static_cast<size_t>(p.slot)] = &priv_cells.back();
          if (p.common_key >= 0)
            tctx.scalar_ov[static_cast<size_t>(p.common_key)] =
                &priv_cells.back();
        }
      }
      for (const ReductionSpec& rs : plan.reductions) {
        priv_cells.push_back(red_identity(rs.op));
        shadow.scalar[static_cast<size_t>(rs.slot)] = &priv_cells.back();
      }
      // Private loop variable.
      priv_cells.push_back(0.0);
      double* iv_cell = &priv_cells.back();
      shadow.scalar[static_cast<size_t>(plan.iv_slot)] = iv_cell;
      shadow.scalar_int[static_cast<size_t>(plan.iv_slot)] = 1;

      std::vector<RtVal> regs(static_cast<size_t>(cu.num_regs));
      for (int64_t i = clo; i <= chi; ++i) {
        *iv_cell = static_cast<double>(i);
        exec_range(cu, shadow, tctx, regs.data(), cu.code, plan.body_start,
                   plan.body_end);
      }

      parallel_steps_.fetch_add(
          static_cast<uint64_t>(ctx.steps_left - tctx.steps_left),
          std::memory_order_relaxed);
      parallel_insns_.fetch_add(tctx.insns, std::memory_order_relaxed);

      // Harvest private scalar values and reduction partials.
      for (size_t pi = 0; pi < plan.privates.size(); ++pi)
        if (!plan.privates[pi].is_array)
          mine.scalar_values[pi] =
              *shadow.scalar[static_cast<size_t>(plan.privates[pi].slot)];
      mine.reductions.reserve(plan.reductions.size());
      for (const ReductionSpec& rs : plan.reductions)
        mine.reductions.push_back(
            *shadow.scalar[static_cast<size_t>(rs.slot)]);
      if (chi == hi) {
        std::lock_guard<std::mutex> lock(red_mu);
        last_chunk_thread = tid;
      }
    });

    // Last-value copy-out (sequential semantics for live-out privates).
    if (last_chunk_thread >= 0) {
      Priv& last = privs[static_cast<size_t>(last_chunk_thread)];
      for (size_t pi = 0; pi < plan.privates.size(); ++pi) {
        const PrivateSpec& p = plan.privates[pi];
        if (!p.is_array) {
          *f.scalar[static_cast<size_t>(p.slot)] = last.scalar_values[pi];
          continue;
        }
        const auto& store = last.arrays[pi];
        if (!store) continue;
        if (p.common_key >= 0) {
          // Copy back into the shared global store.
          auto shared = globals_.get_or_create_array(
              m_.keys[static_cast<size_t>(p.common_key)], store->elem_type(),
              {}, {});
          if (shared->size() == store->size()) shared->raw() = store->raw();
        } else {
          ArrayRec& rec = f.arrays[static_cast<size_t>(p.slot)];
          if (rec.store && rec.store->size() == store->size())
            rec.store->raw() = store->raw();
        }
      }
    }
    // Combine reductions deterministically in thread order.
    for (size_t ri = 0; ri < plan.reductions.size(); ++ri) {
      const ReductionSpec& rs = plan.reductions[ri];
      double* cell = f.scalar[static_cast<size_t>(rs.slot)];
      double acc = *cell;
      for (const Priv& p : privs) {
        if (p.reductions.size() != plan.reductions.size()) continue;
        double v = p.reductions[ri];
        switch (rs.op) {
          case RedOp::Prod: acc *= v; break;
          case RedOp::Min: acc = std::min(acc, v); break;
          case RedOp::Max: acc = std::max(acc, v); break;
          case RedOp::Sum: acc += v; break;
        }
      }
      *cell = f.scalar_int[static_cast<size_t>(rs.slot)]
                  ? static_cast<double>(std::llround(acc))
                  : acc;
    }
    // Loop variable exit value (Fortran leaves first-out-of-range).
    *f.scalar[static_cast<size_t>(plan.iv_slot)] =
        static_cast<double>(hi + 1);
  }

  // ---- dispatch loop ------------------------------------------------------

  void exec_range(const CompiledUnit& cu, VmFrame& f, VmCtx& ctx, RtVal* r,
                  const std::vector<Insn>& code, int32_t pc, int32_t end) {
    const Insn* ip = code.data();
    while (pc < end) {
      const Insn& I = ip[pc++];
      ++ctx.insns;
      switch (I.op) {
        case Op::Charge:
          ctx.charge();
          break;
        case Op::Move:
          r[I.a] = r[I.b];
          break;
        case Op::LoadConst:
          r[I.a] = m_.consts[static_cast<size_t>(I.d)];
          break;
        case Op::LoadBool:
          r[I.a] = RtVal::logical(I.d != 0);
          break;
        case Op::LoadScalar:
          r[I.a] = RtVal{*f.scalar[static_cast<size_t>(I.d)],
                         f.scalar_int[static_cast<size_t>(I.d)] != 0};
          break;
        case Op::StoreScalar:
          *f.scalar[static_cast<size_t>(I.d)] =
              f.scalar_int[static_cast<size_t>(I.d)]
                  ? static_cast<double>(r[I.a].as_int())
                  : r[I.a].v;
          break;
        case Op::StoreRaw:
          *f.scalar[static_cast<size_t>(I.d)] = r[I.a].v;
          break;
        case Op::LoadElem: {
          const AccessDesc& acc = m_.accesses[static_cast<size_t>(I.d)];
          const ArrayRec& rec = f.arrays[static_cast<size_t>(acc.array_slot)];
          if (!rec.store)
            throw RtError{
                "reference to undeclared array " +
                cu.arrays[static_cast<size_t>(acc.array_slot)].name};
          int64_t off = access_offset(
              acc, rec, r, cu.arrays[static_cast<size_t>(acc.array_slot)].name);
          r[I.a] = RtVal{rec.data[off], rec.is_int};
          break;
        }
        case Op::StoreElem: {
          const AccessDesc& acc = m_.accesses[static_cast<size_t>(I.d)];
          ArrayRec& rec = f.arrays[static_cast<size_t>(acc.array_slot)];
          if (!rec.store)
            throw RtError{
                "assignment to undeclared array " +
                cu.arrays[static_cast<size_t>(acc.array_slot)].name};
          int64_t off = access_offset(
              acc, rec, r, cu.arrays[static_cast<size_t>(acc.array_slot)].name);
          rec.data[off] =
              rec.is_int ? static_cast<double>(r[I.a].as_int()) : r[I.a].v;
          break;
        }
        case Op::Addr: {
          const AccessDesc& acc = m_.accesses[static_cast<size_t>(I.d)];
          const ArrayRec& rec = f.arrays[static_cast<size_t>(acc.array_slot)];
          if (!rec.store)
            throw RtError{
                "actual array " +
                cu.arrays[static_cast<size_t>(acc.array_slot)].name +
                " unknown"};
          int64_t off = access_offset(
              acc, rec, r, cu.arrays[static_cast<size_t>(acc.array_slot)].name);
          r[I.a] = RtVal::integer(off);
          break;
        }
        case Op::Neg: r[I.a] = rt_neg(r[I.b]); break;
        case Op::NotOp: r[I.a] = rt_not(r[I.b]); break;
        case Op::Add: r[I.a] = rt_add(r[I.b], r[I.c]); break;
        case Op::Sub: r[I.a] = rt_sub(r[I.b], r[I.c]); break;
        case Op::Mul: r[I.a] = rt_mul(r[I.b], r[I.c]); break;
        case Op::Div: r[I.a] = rt_div(r[I.b], r[I.c]); break;
        case Op::PowOp: r[I.a] = rt_pow(r[I.b], r[I.c]); break;
        case Op::CmpEq: r[I.a] = rt_eq(r[I.b], r[I.c]); break;
        case Op::CmpNe: r[I.a] = rt_ne(r[I.b], r[I.c]); break;
        case Op::CmpLt: r[I.a] = rt_lt(r[I.b], r[I.c]); break;
        case Op::CmpLe: r[I.a] = rt_le(r[I.b], r[I.c]); break;
        case Op::CmpGt: r[I.a] = rt_gt(r[I.b], r[I.c]); break;
        case Op::CmpGe: r[I.a] = rt_ge(r[I.b], r[I.c]); break;
        case Op::Bool: r[I.a] = RtVal::logical(r[I.b].truthy()); break;
        case Op::MinStep: r[I.a] = rt_min_step(r[I.a], r[I.b]); break;
        case Op::MaxStep: r[I.a] = rt_max_step(r[I.a], r[I.b]); break;
        case Op::ModOp: r[I.a] = rt_mod(r[I.b], r[I.c]); break;
        case Op::SignOp: r[I.a] = rt_sign(r[I.b], r[I.c]); break;
        case Op::AbsOp: r[I.a] = rt_abs(r[I.b]); break;
        case Op::IntAbs: r[I.a] = rt_iabs(r[I.b]); break;
        case Op::Sqrt: r[I.a] = rt_sqrt(r[I.b]); break;
        case Op::ExpOp: r[I.a] = rt_exp(r[I.b]); break;
        case Op::LogOp: r[I.a] = rt_log(r[I.b]); break;
        case Op::Sin: r[I.a] = rt_sin(r[I.b]); break;
        case Op::Cos: r[I.a] = rt_cos(r[I.b]); break;
        case Op::Tan: r[I.a] = rt_tan(r[I.b]); break;
        case Op::ToReal: r[I.a] = rt_toreal(r[I.b]); break;
        case Op::ToInt: r[I.a] = rt_toint(r[I.b]); break;
        case Op::Nint: r[I.a] = rt_nint(r[I.b]); break;
        case Op::Jump:
          pc = I.d;
          break;
        case Op::JumpIfFalse:
          if (!r[I.a].truthy()) pc = I.d;
          break;
        case Op::JumpIfTrue:
          if (r[I.a].truthy()) pc = I.d;
          break;
        case Op::CheckStep:
          if (static_cast<int64_t>(r[I.a].v) == 0)
            throw RtError{"zero DO step"};
          break;
        case Op::LoopTest: {
          int64_t i = static_cast<int64_t>(r[I.a].v);
          int64_t hi = static_cast<int64_t>(r[I.b].v);
          int64_t step = static_cast<int64_t>(r[I.c].v);
          if (step > 0 ? i > hi : i < hi) pc = I.d;
          break;
        }
        case Op::LoopNext:
          r[I.a].v += r[I.c].v;
          pc = I.d;
          break;
        case Op::ParDo: {
          int64_t lo = static_cast<int64_t>(r[I.a].v);
          int64_t hi = static_cast<int64_t>(r[I.b].v);
          int64_t step = static_cast<int64_t>(r[I.c].v);
          if (opts_.enable_parallel && pool_ && !ctx.in_parallel &&
              step == 1 && hi > lo) {
            const ParDoPlan& plan = cu.pardos[static_cast<size_t>(I.d)];
            run_pardo(cu, f, ctx, plan, lo, hi);
            pc = plan.exit_pc;
          }
          break;  // otherwise fall through to the serial loop
        }
        case Op::MakeArray:
          make_array(cu, f, ctx, r, I.d);
          break;
        case Op::Reshape:
          reshape(cu, f, r, I.d);
          break;
        case Op::Call:
          exec_call(cu, f, ctx, r, I.d);
          break;
        case Op::Write:
          exec_write(cu, r, I.d);
          break;
        case Op::Stop:
          throw RtStop{m_.strings[static_cast<size_t>(I.d)]};
        case Op::Error:
          throw RtError{m_.strings[static_cast<size_t>(I.d)]};
        case Op::ReturnInDo:
          throw RtError{I.d == ctx.par_body ? "RETURN out of a parallel DO"
                                            : "RETURN out of a DO loop"};
        case Op::Ret:
          return;
      }
    }
  }

  void exec_call(const CompiledUnit& cu, VmFrame& f, VmCtx& ctx,
                 const RtVal* r, int32_t id) {
    const CallPlan& plan = cu.calls[static_cast<size_t>(id)];
    const CompiledUnit& callee = m_.units[static_cast<size_t>(plan.callee)];
    VmFrame g;
    init_frame(g, callee, ctx);
    for (size_t i = 0; i < plan.args.size(); ++i) {
      const CallArg& a = plan.args[i];
      switch (a.kind) {
        case ArgKind::ScalarPtr: {
          int32_t fs = callee.formal_scalar_slot[i];
          g.scalar[static_cast<size_t>(fs)] =
              f.scalar[static_cast<size_t>(a.slot)];
          g.scalar_int[static_cast<size_t>(fs)] =
              f.scalar_int[static_cast<size_t>(a.slot)];
          break;
        }
        case ArgKind::ScalarElem: {
          int32_t fs = callee.formal_scalar_slot[i];
          const ArrayRec& rec = f.arrays[static_cast<size_t>(a.slot)];
          g.scalar[static_cast<size_t>(fs)] =
              rec.data + static_cast<int64_t>(r[a.reg].v);
          g.scalar_int[static_cast<size_t>(fs)] = rec.is_int ? 1 : 0;
          break;
        }
        case ArgKind::ScalarValue: {
          int32_t fs = callee.formal_scalar_slot[i];
          g.cells[static_cast<size_t>(fs)] = r[a.reg].v;
          g.scalar[static_cast<size_t>(fs)] = &g.cells[static_cast<size_t>(fs)];
          g.scalar_int[static_cast<size_t>(fs)] = r[a.reg].is_int ? 1 : 0;
          break;
        }
        case ArgKind::ArrayWhole: {
          int32_t fa = callee.formal_array_slot[i];
          g.arrays[static_cast<size_t>(fa)] =
              f.arrays[static_cast<size_t>(a.slot)];
          break;
        }
        case ArgKind::ArrayElem: {
          int32_t fa = callee.formal_array_slot[i];
          g.arrays[static_cast<size_t>(fa)] =
              f.arrays[static_cast<size_t>(a.slot)];
          g.arrays[static_cast<size_t>(fa)].base =
              static_cast<int64_t>(r[a.reg].v);
          break;
        }
      }
    }
    int32_t saved = ctx.par_body;
    ctx.par_body = -1;
    run_unit(callee, g, ctx);
    ctx.par_body = saved;
  }

  void exec_write(const CompiledUnit& cu, const RtVal* r, int32_t id) {
    const WritePlan& plan = cu.writes[static_cast<size_t>(id)];
    std::string line;
    for (const WriteItem& item : plan.items) {
      if (!line.empty()) line += " ";
      if (item.str >= 0)
        line += m_.strings[static_cast<size_t>(item.str)];
      else
        line += format_val(r[item.reg]);
    }
    {
      std::lock_guard<std::mutex> lock(output_mu_);
      output_ += line;
      output_ += '\n';
    }
  }
};

}  // namespace

RunResult execute(const Module& m, const InterpOptions& opts,
                  GlobalStore& globals, double compile_ms) {
  Executor ex(m, opts, globals);
  return ex.run(compile_ms);
}

}  // namespace ap::interp::bc
