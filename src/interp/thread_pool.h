// The interpreter's work-sharing pool for `!$OMP PARALLEL DO` regions is
// the shared pool in support/thread_pool.h (also used by the compilation
// service scheduler); this header preserves the historical interp-local
// name. One pool per Interpreter instance.
#pragma once

#include "support/thread_pool.h"

namespace ap::interp {

using ap::ThreadPool;

}  // namespace ap::interp
