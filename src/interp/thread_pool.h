// Minimal work-sharing thread pool for executing `!$OMP PARALLEL DO`
// regions. One pool per Interpreter instance; workers park on a condition
// variable between regions so per-region overhead stays in the microsecond
// range (parallel regions in the mini-suite run for milliseconds).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ap::interp {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  int size() const { return static_cast<int>(workers_.size()) + 1; }

  // Split [lo, hi] (inclusive, step 1) into one contiguous chunk per
  // thread and run `fn(chunk_lo, chunk_hi, thread_index)` on each; the
  // calling thread executes chunk 0. Blocks until every chunk finishes.
  // Exceptions thrown by `fn` are rethrown on the caller (first one wins).
  void parallel_for(int64_t lo, int64_t hi,
                    const std::function<void(int64_t, int64_t, int)>& fn);

 private:
  struct Task {
    int64_t lo, hi;
    int index;
  };

  void worker_main(int worker_index);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_, cv_done_;
  const std::function<void(int64_t, int64_t, int)>* fn_ = nullptr;
  std::vector<Task> tasks_;      // tasks for workers (caller runs its own)
  size_t next_task_ = 0;
  int pending_ = 0;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
  std::exception_ptr error_;
};

}  // namespace ap::interp
