// Runtime correctness tester (paper §III.D: "we use runtime testers to
// check and verify the correctness of our optimized code").
//
// Runs a program twice — serially (OpenMP metadata ignored) and in parallel
// with the requested thread count — and compares the final COMMON storage
// state and the WRITE output. Floating-point state is compared with a
// relative tolerance to absorb reduction reassociation.
#pragma once

#include <string>

#include "fir/ast.h"
#include "interp/interp.h"

namespace ap::interp {

struct TestVerdict {
  bool passed = false;
  std::string detail;      // first mismatch or failure description
  RunResult serial;
  RunResult parallel;
};

TestVerdict compare_serial_parallel(const fir::Program& prog, int num_threads,
                                    double rel_tol = 1e-9,
                                    int64_t max_steps = 2'000'000'000);

}  // namespace ap::interp
