#include "net/wire.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ap::net {

std::string encode_frame(std::string_view payload) {
  std::string out;
  out.reserve(4 + payload.size());
  uint32_t n = static_cast<uint32_t>(payload.size());
  out += static_cast<char>((n >> 24) & 0xFF);
  out += static_cast<char>((n >> 16) & 0xFF);
  out += static_cast<char>((n >> 8) & 0xFF);
  out += static_cast<char>(n & 0xFF);
  out += payload;
  return out;
}

void FrameReader::feed(const char* data, size_t n) {
  if (error_) return;  // the stream is already unsynchronized
  buf_.append(data, n);
}

std::optional<std::string> FrameReader::next() {
  if (error_ || buf_.size() < 4) return std::nullopt;
  uint32_t n = (static_cast<uint32_t>(static_cast<unsigned char>(buf_[0]))
                << 24) |
               (static_cast<uint32_t>(static_cast<unsigned char>(buf_[1]))
                << 16) |
               (static_cast<uint32_t>(static_cast<unsigned char>(buf_[2]))
                << 8) |
               static_cast<uint32_t>(static_cast<unsigned char>(buf_[3]));
  if (n > max_frame_) {
    error_ = true;
    error_msg_ = "frame length " + std::to_string(n) +
                 " exceeds maximum " + std::to_string(max_frame_);
    buf_.clear();
    return std::nullopt;
  }
  if (buf_.size() < 4 + static_cast<size_t>(n)) return std::nullopt;
  std::string payload = buf_.substr(4, n);
  buf_.erase(0, 4 + static_cast<size_t>(n));
  return payload;
}

int listen_tcp(int port, int* bound_port, std::string* err) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err) *err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (err) *err = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 128) < 0) {
    if (err) *err = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (bound_port) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0)
      *bound_port = ntohs(actual.sin_port);
    else
      *bound_port = port;
  }
  return fd;
}

int connect_tcp(const std::string& host, int port, std::string* err) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err) *err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err) *err = "invalid IPv4 address: " + host;
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (err) *err = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool set_recv_timeout_ms(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
}

}  // namespace ap::net
