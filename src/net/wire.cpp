#include "net/wire.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ap::net {

namespace {

void patch_be32(char* p, uint32_t n) {
  p[0] = static_cast<char>((n >> 24) & 0xFF);
  p[1] = static_cast<char>((n >> 16) & 0xFF);
  p[2] = static_cast<char>((n >> 8) & 0xFF);
  p[3] = static_cast<char>(n & 0xFF);
}

}  // namespace

std::string encode_frame(std::string_view payload) {
  std::string out;
  out.reserve(4 + payload.size());
  append_frame(&out, payload);
  return out;
}

size_t begin_frame(std::string* out) {
  size_t pos = out->size();
  out->append(4, '\0');
  return pos;
}

void end_frame(std::string* out, size_t header_pos) {
  uint32_t n = static_cast<uint32_t>(out->size() - header_pos - 4);
  patch_be32(out->data() + header_pos, n);
}

void append_frame(std::string* out, std::string_view payload) {
  char hdr[4];
  patch_be32(hdr, static_cast<uint32_t>(payload.size()));
  out->append(hdr, 4);
  out->append(payload.data(), payload.size());
}

void FrameReader::feed(const char* data, size_t n) {
  if (error_) return;  // the stream is already unsynchronized
  if (pos_ == buf_.size()) {
    // Fully drained: recycle the allocation (capacity is kept, so a busy
    // connection stops allocating here after warm-up).
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 4096 && pos_ >= buf_.size() / 2) {
    // A partial frame sits behind a large consumed prefix; compact once
    // rather than letting the buffer creep.
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

std::optional<std::string_view> FrameReader::next_view() {
  if (error_ || buf_.size() - pos_ < 4) return std::nullopt;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buf_.data() + pos_);
  uint32_t n = (static_cast<uint32_t>(p[0]) << 24) |
               (static_cast<uint32_t>(p[1]) << 16) |
               (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
  if (n > max_frame_) {
    error_ = true;
    error_msg_ = "frame length " + std::to_string(n) +
                 " exceeds maximum " + std::to_string(max_frame_);
    buf_.clear();
    pos_ = 0;
    return std::nullopt;
  }
  if (buf_.size() - pos_ < 4 + static_cast<size_t>(n)) return std::nullopt;
  std::string_view payload(buf_.data() + pos_ + 4, n);
  pos_ += 4 + static_cast<size_t>(n);
  return payload;
}

std::optional<std::string> FrameReader::next() {
  std::optional<std::string_view> v = next_view();
  if (!v) return std::nullopt;
  return std::string(*v);
}

int listen_tcp(int port, int* bound_port, std::string* err) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err) *err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (err) *err = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 128) < 0) {
    if (err) *err = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (bound_port) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0)
      *bound_port = ntohs(actual.sin_port);
    else
      *bound_port = port;
  }
  return fd;
}

int connect_tcp(const std::string& host, int port, std::string* err) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err) *err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Not an IPv4 literal; fall back to name resolution.
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
    if (rc != 0 || !res) {
      if (err) *err = "cannot resolve host: " + host;
      if (res) ::freeaddrinfo(res);
      ::close(fd);
      return -1;
    }
    addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (err) *err = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool set_recv_timeout_ms(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
}

}  // namespace ap::net
