// The versioned JSON wire protocol spoken between apserved and apclient.
//
// Every frame payload is one JSON object. Requests carry `"v"` (protocol
// version, must equal kProtocolVersion), `"type"`, a client-chosen `"id"`
// echoed in the response, and per-type fields:
//
//   compile — source text, annotation text, full PipelineOptions
//   run     — compile fields plus a full InterpOptions encoding; the
//             server compiles (uncached path: execution needs the live
//             AST with its OMP metadata) and executes the result
//   metrics — no payload; returns cache + server counters
//   ping    — no payload; liveness probe
//
// Responses carry the echoed id and a `"status"`:
//
//   ok                — per-type payload (result / run / metrics)
//   error             — request was valid but the work failed
//   overloaded        — bounded admission queue was full (or draining);
//                       the request was NOT accepted, retry later
//   deadline_exceeded — accepted, but not finished within the deadline;
//                       the result was discarded
//   protocol_error    — unparseable/oversized frame or bad version; the
//                       server closes the connection after sending it
//
// Options encodings are total: every PipelineOptions and InterpOptions
// field has a named key, so a compile over the wire is bit-equivalent to
// an in-process run with the same options (tests/net_e2e_test.cpp holds
// this as an invariant). Unknown request keys are ignored (forward
// compatibility); unknown enum strings are errors.
#pragma once

#include <cstdint>
#include <string>

#include "driver/pipeline.h"
#include "interp/interp.h"
#include "service/cache.h"
#include "support/json.h"

namespace ap::net {

// v2: per-pass timing records replace the fixed timing fields in compile
// results; pipeline options gained stop_after/print_after.
inline constexpr int kProtocolVersion = 2;

enum class RequestType : uint8_t { Compile, Run, Metrics, Ping };
const char* request_type_name(RequestType t);

enum class Status : uint8_t {
  Ok,
  Error,
  Overloaded,
  DeadlineExceeded,
  ProtocolError,
};
const char* status_name(Status s);

struct Request {
  RequestType type = RequestType::Ping;
  int64_t id = 0;
  std::string name;         // display label (app name); not semantic
  std::string source;       // F77-subset program text
  std::string annotations;  // annotation DSL text ("" = none)
  driver::PipelineOptions options;
  interp::InterpOptions interp;  // run requests only
  // Per-request deadline override in milliseconds; 0 = use the server's
  // --request-timeout-ms default.
  int64_t deadline_ms = 0;
};

// One interpreter execution, for run responses.
struct RunPayload {
  bool ok = false;
  bool stopped = false;
  std::string stop_message;
  std::string error;
  std::string output;
  uint64_t statements = 0;
  uint64_t statements_parallel = 0;
  uint64_t instructions = 0;
  double wall_ms = 0;
};

struct Response {
  int64_t id = 0;
  Status status = Status::Ok;
  std::string error;  // human-readable reason for non-ok statuses

  bool has_result = false;
  service::CompileResult result;  // compile and run responses

  bool has_run = false;
  RunPayload run;  // run responses

  json::Value metrics;  // metrics responses (object); null otherwise
};

// Options <-> JSON (every field, round-trip exact).
json::Value pipeline_options_to_json(const driver::PipelineOptions& o);
bool pipeline_options_from_json(const json::Value& v,
                                driver::PipelineOptions* out,
                                std::string* err);
json::Value interp_options_to_json(const interp::InterpOptions& o);
bool interp_options_from_json(const json::Value& v,
                              interp::InterpOptions* out, std::string* err);

// Messages <-> JSON. The *_from_json decoders validate kinds and enum
// strings and never throw; on failure they return false with *err set.
json::Value request_to_json(const Request& r);
bool request_from_json(const json::Value& v, Request* out, std::string* err);
json::Value response_to_json(const Response& r);
bool response_from_json(const json::Value& v, Response* out,
                        std::string* err);

}  // namespace ap::net
