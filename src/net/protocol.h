// The versioned JSON wire protocol spoken between apserved and apclient.
//
// Every frame payload is one JSON object. Requests carry `"v"` (protocol
// version, any value in [kMinProtocolVersion, kProtocolVersion]), `"type"`,
// a client-chosen `"id"` echoed in the response, and per-type fields:
//
//   compile     — source text, annotation text, full PipelineOptions
//   run         — compile fields plus a full InterpOptions encoding; the
//                 server compiles (uncached path: execution needs the live
//                 AST with its OMP metadata) and executes the result
//   metrics     — no payload; returns cache + server counters
//   stats       — v5: no payload; returns the live metrics document plus
//                 latency-histogram summaries (per request type and per
//                 cache outcome) and trace-store counters, answered on
//                 the loop thread so a busy daemon can be polled without
//                 draining
//   ping        — no payload; liveness probe
//   hello       — version negotiation: answered with the server's supported
//                 version range, role, and drain state. Answered for ANY
//                 claimed version — this is how a client discovers what to
//                 speak before committing to a version.
//
// Fleet control plane (v3, the distributed tier of src/dist):
//
//   register    — a worker joins a coordinator: identity + address.
//                 Response carries the current routable peer list.
//   heartbeat   — periodic worker→coordinator liveness + load + cache
//                 stats; `leaving: true` announces a graceful departure.
//                 Response refreshes the peer list.
//   cache_probe — "do you hold content hash K?" — answered from the local
//                 result cache with the serialized CompileResult on hit.
//                 The peer-lookup half of the distributed cache tier.
//   cache_fill  — push a serialized result under K into the receiver's
//                 cache (replication after a fresh compile).
//   unit_probe  — v6: "do you hold unit-artifact key K?" — answered from
//                 the local unit cache (incr::UnitCache::peek) with the
//                 opaque pass-boundary payload on hit. Lets a late-joining
//                 or resharded worker resume a unit mid-pipeline from a
//                 peer's snapshot instead of recomputing.
//   unit_fill   — v6: push a unit artifact under K (with its boundary
//                 label) into the receiver's unit cache (replication after
//                 a fresh per-unit compute).
//   forward     — a coordinator-wrapped compile/run: same payload fields
//                 plus the wrapped type and the routing attempt counter.
//                 Workers must never re-forward (no routing loops).
//
// Responses carry the echoed id and a `"status"`:
//
//   ok                  — per-type payload (result / run / metrics / hello
//                         / peers / probe outcome)
//   error               — request was valid but the work failed
//   overloaded          — bounded admission queue was full (or draining, or
//                         a fleet has no routable workers); the request was
//                         NOT accepted, retry later
//   deadline_exceeded   — accepted, but not finished within the deadline;
//                         the result was discarded
//   unsupported_version — the request's "v" is outside the server's
//                         supported range (or a v3-only type arrived under
//                         an older version). Structured and non-fatal: the
//                         connection stays open so the client can fall back
//                         after a `hello`.
//   worker_lost         — fleet only: every routable worker for the shard
//                         failed mid-request (transport errors after
//                         bounded retry/failover); safe to retry
//   protocol_error      — unparseable/oversized frame or undecodable
//                         request; the server closes the connection after
//                         sending it (the stream cannot be resynchronized)
//
// Options encodings are total: every PipelineOptions and InterpOptions
// field has a named key, so a compile over the wire is bit-equivalent to
// an in-process run with the same options (tests/net_e2e_test.cpp holds
// this as an invariant; tests/dist_e2e_test.cpp extends it across a
// coordinator hop). Unknown request keys are ignored (forward
// compatibility); unknown enum strings are errors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "driver/pipeline.h"
#include "interp/interp.h"
#include "service/cache.h"
#include "support/json.h"

namespace ap::net {

// v6: fleet-shared unit artifacts — unit_probe/unit_fill move single
// pass-boundary snapshots (incr::UnitCache payloads) between workers the
// way cache_probe/cache_fill move whole results, and compile results
// carry the per-boundary unit counters (per-pass unit_hits/unit_misses/
// unit_disk_hits/unit_peer_hits/unit_invalidated plus the request-level
// disk/peer split).
// v5: observability plane — request tracing (`"trace": true` asks every
// hop to record spans; the response carries the assembled span tree, and
// the minted `trace_id` propagates on forward/cache_probe/cache_fill so
// fleet hops correlate), the `stats` request (live ServerStats +
// latency-histogram summaries from a running daemon, answered on the
// loop thread without draining), and heartbeat-carried histogram
// summaries (WorkerLoad.hist) the coordinator merges into fleet-wide
// quantiles.
// v4: negotiated binary TLV codec (src/net/binproto.h — same message set,
// bit-identical round-trip against this JSON codec), request pipelining
// over one connection (ids were always echoed; v4 makes out-of-order
// responses an explicit contract), and `compile_batch` (N files per
// frame, answered as one frame).
// v3: fleet control plane (register/heartbeat/cache_probe/cache_fill/
// forward), hello negotiation, unsupported_version + worker_lost statuses.
// v2: per-pass timing records replace the fixed timing fields in compile
// results; pipeline options gained stop_after/print_after.
inline constexpr int kProtocolVersion = 6;
// v1 request bodies decode identically to v2 (absent fields keep their
// defaults), so the full historical range stays accepted.
inline constexpr int kMinProtocolVersion = 1;

enum class RequestType : uint8_t {
  Compile,
  Run,
  Metrics,
  Ping,
  Hello,
  Register,
  Heartbeat,
  CacheProbe,
  CacheFill,
  Forward,
  CompileBatch,
  Stats,
  UnitProbe,
  UnitFill,
};
const char* request_type_name(RequestType t);

// True for the v3 fleet control-plane types (register/heartbeat/probe/
// fill/forward): requests of these types under an older claimed version
// draw `unsupported_version`.
bool request_type_requires_v3(RequestType t);

// True for the v4 types (compile_batch): older claimed versions draw
// `unsupported_version`.
bool request_type_requires_v4(RequestType t);

// True for the v5 types (stats): older claimed versions draw
// `unsupported_version`.
bool request_type_requires_v5(RequestType t);

// True for the v6 types (unit_probe/unit_fill): older claimed versions
// draw `unsupported_version`.
bool request_type_requires_v6(RequestType t);

enum class Status : uint8_t {
  Ok,
  Error,
  Overloaded,
  DeadlineExceeded,
  UnsupportedVersion,
  WorkerLost,
  ProtocolError,
};
const char* status_name(Status s);

// Content-hash keys travel as fixed-width lowercase hex (the same value
// service::cache_key computes; the coordinator shards by it and the cache
// tier probes by it).
std::string format_key(uint64_t key);
bool parse_key(std::string_view hex, uint64_t* out);

// A worker's identity and reachable address (register/heartbeat requests,
// peer lists in their responses).
struct WorkerInfo {
  std::string id;    // stable identity; the rendezvous-hash token
  std::string host;  // peer-reachable address (loopback deployments: 127.0.0.1)
  int port = 0;      // wire-protocol port
};

// A worker's load + cache counters, piggybacked on heartbeats so the
// coordinator's telemetry has a per-worker section without extra RPCs.
struct WorkerLoad {
  int64_t queue_depth = 0;   // admitted, not yet running
  int64_t running = 0;       // jobs currently executing
  uint64_t cache_entries = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t peer_hits = 0;    // misses answered by the peer tier instead
  // v5: this worker's latency-histogram summaries, as the compact
  // obs::encode_histogram_set text ("" = none reported). The coordinator
  // merges these into fleet-wide quantiles.
  std::string hist;
};

// Hello response payload: what the server speaks and what it is.
struct HelloInfo {
  int min_version = kMinProtocolVersion;
  int max_version = kProtocolVersion;
  std::string role = "single";  // "single" | "coordinator" | "worker"
  bool draining = false;
  // The server accepts v4 binary TLV frames (binproto.h) interleaved with
  // JSON frames on the same connection. Clients switch codecs only after
  // seeing this (or max_version >= 4) in a hello.
  bool binary = false;
};

// One file of a `compile_batch` request: the same payload fields a
// standalone compile carries.
struct BatchItem {
  std::string name;
  std::string source;
  std::string annotations;
  driver::PipelineOptions options;
};

struct Request {
  RequestType type = RequestType::Ping;
  int64_t id = 0;
  // The version the sender claimed ("v"). Encoders stamp this value (a
  // v3 client is simulated by setting it below kProtocolVersion);
  // decoders accept the full supported range and preserve the claim so
  // servers can gate v3-/v4-only types.
  int version = kProtocolVersion;
  std::string name;         // display label (app name); not semantic
  std::string source;       // F77-subset program text
  std::string annotations;  // annotation DSL text ("" = none)
  driver::PipelineOptions options;
  interp::InterpOptions interp;  // run requests only
  // Per-request deadline override in milliseconds; 0 = use the server's
  // --request-timeout-ms default.
  int64_t deadline_ms = 0;

  // --- v3 fleet fields ---
  WorkerInfo worker;    // register, heartbeat
  WorkerLoad load;      // heartbeat
  bool leaving = false; // heartbeat: graceful departure announcement
  std::string key;      // cache_probe, cache_fill, unit_probe/fill (hex)
  std::string payload;  // cache_fill / unit_fill: serialized payload

  // --- v6 fields ---
  // unit_fill: the snapshotting pass's name ("normalize", "parallelize")
  // — the receiver's stats bucket for the adopted artifact.
  std::string boundary;
  // forward: the wrapped request type (Compile, Run, or CompileBatch)
  // and the coordinator's 0-based routing attempt for this request.
  RequestType inner = RequestType::Compile;
  int attempt = 0;

  // --- v4 fields ---
  std::vector<BatchItem> batch;  // compile_batch: N files in one frame

  // --- v5 fields ---
  // Ask every hop to record spans; the response's `trace` carries the
  // assembled tree. The serving core mints `trace_id` at admission when
  // the client left it 0; internal hops (forward/cache_probe/cache_fill)
  // propagate the minted id so fleet-side records correlate.
  bool trace = false;
  uint64_t trace_id = 0;
};

// One interpreter execution, for run responses.
struct RunPayload {
  bool ok = false;
  bool stopped = false;
  std::string stop_message;
  std::string error;
  std::string output;
  uint64_t statements = 0;
  uint64_t statements_parallel = 0;
  uint64_t instructions = 0;
  double wall_ms = 0;
};

struct Response {
  int64_t id = 0;
  Status status = Status::Ok;
  std::string error;  // human-readable reason for non-ok statuses

  bool has_result = false;
  service::CompileResult result;  // compile and run responses

  bool has_run = false;
  RunPayload run;  // run responses

  json::Value metrics;  // metrics and stats responses (object); null otherwise

  // --- v5 fields ---
  // Traced requests: the span tree (obs::span_to_json form) assembled by
  // the answering server; null when the request was not traced.
  json::Value trace;

  // --- v3 fleet fields ---
  bool has_hello = false;
  HelloInfo hello;  // hello responses

  bool found = false;   // cache_probe: the key was held
  std::string payload;  // cache_probe hit: serialized CompileResult

  bool has_peers = false;
  std::vector<WorkerInfo> peers;  // register/heartbeat: routable peers

  // --- v4 fields ---
  bool has_batch = false;
  // compile_batch: results[i] answers batch[i] (per-item failures are
  // carried in CompileResult::ok/error; the frame status stays ok).
  std::vector<service::CompileResult> batch;
};

// Options <-> JSON (every field, round-trip exact).
json::Value pipeline_options_to_json(const driver::PipelineOptions& o);
bool pipeline_options_from_json(const json::Value& v,
                                driver::PipelineOptions* out,
                                std::string* err);
json::Value interp_options_to_json(const interp::InterpOptions& o);
bool interp_options_from_json(const json::Value& v,
                              interp::InterpOptions* out, std::string* err);

// Messages <-> JSON. The *_from_json decoders validate kinds and enum
// strings and never throw; on failure they return false with *err set.
json::Value request_to_json(const Request& r);
bool request_from_json(const json::Value& v, Request* out, std::string* err);
json::Value response_to_json(const Response& r);
bool response_from_json(const json::Value& v, Response* out,
                        std::string* err);

}  // namespace ap::net
