#include "net/channel.h"

#include <utility>

namespace ap::net {

Channel::~Channel() {
  std::unique_lock<std::mutex> lock(mu_);
  fail_all_locked("channel destroyed");
}

bool Channel::ensure_connected_locked(std::string* err) {
  if (client_.connected()) return true;
  if (!client_.connect(opts_.host, opts_.port, err, opts_.recv_timeout_ms))
    return false;
  ++connects_;
  if (opts_.negotiate) {
    // Fresh connection: nothing is in flight, so a blocking hello under
    // the lock is safe.
    std::string nerr;
    if (!client_.negotiate(&nerr)) {
      client_.close();
      if (err) *err = "negotiate: " + nerr;
      return false;
    }
  }
  return true;
}

void Channel::fail_all_locked(const std::string& why) {
  for (auto& [id, w] : pending_) {
    w->failed = true;
    w->err = why;
  }
  pending_.clear();
  client_.close();
  cv_.notify_all();
}

void Channel::drain_as_leader(std::unique_lock<std::mutex>& lock) {
  // One frame per leadership turn: the lock is dropped only around the
  // blocking read; dispatch happens under it. Sends from other threads
  // proceed meanwhile — Client's send and receive paths share only the
  // fd, which stays stable while a reader is active (fail_all/reset wait
  // for the leader to exit before closing).
  lock.unlock();
  Response r;
  std::string rerr;
  bool ok = client_.recv_any(&r, &rerr);
  lock.lock();
  if (!ok) {
    fail_all_locked(rerr);
    return;
  }
  auto it = pending_.find(r.id);
  if (it != pending_.end()) {
    Waiter* w = it->second;
    pending_.erase(it);
    w->resp = std::move(r);
    w->done = true;
  }
  // A frame answering no pending call (stale id) is dropped; if the
  // stream is truly desynchronized the next read fails and poisons the
  // channel anyway.
  cv_.notify_all();
}

bool Channel::call(Request req, Response* resp, std::string* err) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!ensure_connected_locked(err)) return false;
  // Ids are channel-local: concurrent callers may hand in requests that
  // carry equal ids (e.g. forwards preserving different clients'
  // numbering), and a duplicate key in pending_ would orphan a waiter.
  // The submit below assigns a fresh connection-unique id; callers that
  // need their own id in the response rewrite it on return.
  req.id = 0;
  int64_t id = 0;
  std::string serr;
  if (!client_.submit(std::move(req), &id, &serr)) {
    // A partial send leaves the stream unusable for everyone.
    fail_all_locked(serr);
    if (err) *err = serr;
    return false;
  }
  Waiter w;
  pending_[id] = &w;
  if (pending_.size() > inflight_peak_) inflight_peak_ = pending_.size();
  while (!w.done && !w.failed) {
    if (!reader_active_) {
      reader_active_ = true;
      drain_as_leader(lock);
      reader_active_ = false;
      cv_.notify_all();
    } else {
      cv_.wait(lock);
    }
  }
  pending_.erase(id);
  if (w.failed) {
    if (err) *err = w.err;
    return false;
  }
  *resp = std::move(w.resp);
  return true;
}

void Channel::reset() {
  std::unique_lock<std::mutex> lock(mu_);
  // Never close the fd under an active reader; wait for it to surface.
  cv_.wait(lock, [&] { return !reader_active_; });
  fail_all_locked("channel reset");
}

uint64_t Channel::connects() const {
  std::unique_lock<std::mutex> lock(mu_);
  return connects_;
}

uint64_t Channel::reconnects() const {
  std::unique_lock<std::mutex> lock(mu_);
  return connects_ > 0 ? connects_ - 1 : 0;
}

uint64_t Channel::inflight_peak() const {
  std::unique_lock<std::mutex> lock(mu_);
  return inflight_peak_;
}

bool Channel::binary() const {
  std::unique_lock<std::mutex> lock(mu_);
  return client_.binary();
}

}  // namespace ap::net
