#include "net/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "interp/interp.h"

namespace ap::net {

namespace {

using clock = std::chrono::steady_clock;

constexpr char kWakeDrain = 'q';
constexpr char kWakeNudge = 'n';

double ms_since(clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(clock::now() - t0).count();
}

int64_t steady_ms(clock::time_point t = clock::now()) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             t.time_since_epoch())
      .count();
}

}  // namespace

Server::Server(const ServerOptions& opts) : opts_(opts) {
  if (opts_.threads < 1) opts_.threads = 1;
  if (opts_.max_queue < 1) opts_.max_queue = 1;
}

Server::~Server() {
  if (started_ && !stopped_.load()) {
    begin_drain();
    wait();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_r_ >= 0) ::close(wake_r_);
  if (wake_w_ >= 0) ::close(wake_w_);
}

bool Server::start(std::string* err) {
  if (!opts_.scheduler && !opts_.executor) {
    if (err) *err = "ServerOptions.scheduler is required (or an executor)";
    return false;
  }
  listen_fd_ = listen_tcp(opts_.port, &port_, err);
  if (listen_fd_ < 0) return false;
  set_nonblocking(listen_fd_);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    if (err) *err = "pipe failed";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  wake_r_ = pipe_fds[0];
  wake_w_ = pipe_fds[1];
  set_nonblocking(wake_r_);
  set_nonblocking(wake_w_);

  started_ = true;
  for (int i = 0; i < opts_.threads; ++i)
    workers_.emplace_back([this] { worker_main(); });
  loop_thread_ = std::thread([this] { loop_main(); });
  return true;
}

void Server::begin_drain() {
  if (wake_w_ >= 0) {
    char c = kWakeDrain;
    [[maybe_unused]] ssize_t n = ::write(wake_w_, &c, 1);
  }
}

void Server::nudge() {
  if (wake_w_ >= 0) {
    char c = kWakeNudge;
    [[maybe_unused]] ssize_t n = ::write(wake_w_, &c, 1);
  }
}

void Server::wait() {
  if (!started_) return;
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
  stopped_.store(true);
  if (opts_.telemetry) opts_.telemetry->record_server_stats(stats());
}

service::ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

int64_t Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return static_cast<int64_t>(queue_.size());
}

int64_t Server::jobs_running() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return jobs_running_;
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void Server::loop_main() {
  clock::time_point drain_deadline = clock::time_point::max();
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn;  // conn id per pollfd slot (0 = not a conn)

  while (true) {
    fds.clear();
    fd_conn.clear();
    fds.push_back({wake_r_, POLLIN, 0});
    fd_conn.push_back(0);
    if (!draining_.load() && listen_fd_ >= 0) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto& [id, conn] : conns_) {
        short events = 0;
        if (!conn->closing) events |= POLLIN;
        {
          std::lock_guard<std::mutex> out_lock(conn->out_mu);
          if (!conn->outbox.empty()) events |= POLLOUT;
        }
        if (events == 0) events = POLLERR;  // still watch for hangup
        fds.push_back({conn->fd, events, 0});
        fd_conn.push_back(id);
      }
    }

    // Poll timeout: nearest deadline (request or drain), else idle tick.
    auto now = clock::now();
    clock::time_point nearest = drain_deadline;
    for (const auto& job : deadline_watch_)
      nearest = std::min(nearest, job->deadline);
    int timeout_ms = -1;
    if (nearest != clock::time_point::max()) {
      auto delta =
          std::chrono::duration_cast<std::chrono::milliseconds>(nearest - now)
              .count();
      timeout_ms = static_cast<int>(std::clamp<int64_t>(delta, 0, 60'000));
    }
    // With live connections and idle reaping on, wake often enough that a
    // silent peer is noticed without any poll activity on its socket.
    if (opts_.idle_timeout_ms > 0) {
      bool have_conns;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        have_conns = !conns_.empty();
      }
      if (have_conns) {
        int tick = static_cast<int>(
            std::clamp<int64_t>(opts_.idle_timeout_ms / 4, 10, 60'000));
        if (timeout_ms < 0 || tick < timeout_ms) timeout_ms = tick;
      }
    }
    ::poll(fds.data(), fds.size(), timeout_ms);
    now = clock::now();

    // Wake pipe: drain any pending bytes; 'q' starts the drain.
    if (fds[0].revents & POLLIN) {
      char buf[256];
      ssize_t n;
      while ((n = ::read(wake_r_, buf, sizeof(buf))) > 0) {
        for (ssize_t i = 0; i < n; ++i) {
          if (buf[i] == kWakeDrain && !draining_.load()) {
            draining_.store(true);
            drain_deadline =
                opts_.drain_timeout_ms > 0
                    ? now + std::chrono::milliseconds(opts_.drain_timeout_ms)
                    : clock::time_point::max();
            ::close(listen_fd_);
            listen_fd_ = -1;
          }
        }
      }
    }

    if (!draining_.load() && listen_fd_ >= 0) accept_new_connections();

    // Socket I/O per connection. Collect ids first: handlers mutate conns_.
    std::vector<std::pair<uint64_t, short>> ready;
    for (size_t i = 0; i < fds.size(); ++i)
      if (fd_conn[i] != 0 && fds[i].revents != 0)
        ready.emplace_back(fd_conn[i], fds[i].revents);
    for (auto& [conn_id, revents] : ready) {
      std::shared_ptr<Connection> conn;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        auto it = conns_.find(conn_id);
        if (it == conns_.end()) continue;
        conn = it->second;
      }
      if (revents & (POLLERR | POLLNVAL)) {
        close_connection(conn_id);
        continue;
      }
      if (revents & (POLLIN | POLLHUP)) read_connection(conn);
      if (revents & POLLOUT) flush_connection(conn);
    }

    sweep_deadlines(now);
    if (opts_.idle_timeout_ms > 0 && !draining_.load()) sweep_idle(now);

    // Opportunistic flush: handlers above may have queued responses on
    // connections that polled readable but not writable this round.
    {
      std::vector<std::shared_ptr<Connection>> all;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        all.reserve(conns_.size());
        for (auto& [id, conn] : conns_) all.push_back(conn);
      }
      for (auto& conn : all) flush_connection(conn);
    }

    if (draining_.load()) {
      bool work_done;
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        work_done = queue_.empty() && jobs_running_ == 0;
        if (work_done && !queue_closed_) {
          queue_closed_ = true;
          queue_cv_.notify_all();
        }
      }
      bool flushed = true;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        for (auto& [id, conn] : conns_) {
          std::lock_guard<std::mutex> out_lock(conn->out_mu);
          if (!conn->outbox.empty()) flushed = false;
        }
      }
      if ((work_done && flushed) || now >= drain_deadline) break;
    }
  }

  // Drain complete (or timed out): close every connection.
  std::vector<uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, conn] : conns_) ids.push_back(id);
  }
  for (uint64_t id : ids) close_connection(id);
}

void Server::accept_new_connections() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;  // EAGAIN or transient error: try next poll round
    set_nonblocking(fd);
    auto conn = std::make_shared<Connection>(opts_.max_frame_bytes);
    conn->fd = fd;
    conn->last_activity_ms.store(steady_ms());
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn->id = next_conn_id_++;
      conns_[conn->id] = conn;
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.connections;
  }
}

void Server::read_connection(const std::shared_ptr<Connection>& conn) {
  char buf[64 * 1024];
  while (true) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->last_activity_ms.store(steady_ms());
      conn->reader.feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {  // half-open or orderly close from the client
      close_connection(conn->id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(conn->id);
    return;
  }

  while (auto payload = conn->reader.next()) {
    handle_frame(conn, *payload);
    if (conn->closing) return;  // protocol error: stop consuming the stream
  }
  if (conn->reader.error() && !conn->closing) {
    Response resp;
    resp.status = Status::ProtocolError;
    resp.error = conn->reader.error_message();
    {
      std::lock_guard<std::mutex> out_lock(conn->out_mu);
      conn->outbox += encode_frame(response_to_json(resp).dump());
    }
    conn->closing = true;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.protocol_errors;
  }
}

void Server::handle_frame(const std::shared_ptr<Connection>& conn,
                          const std::string& payload) {
  auto reply = [&](const Response& resp) {
    std::lock_guard<std::mutex> out_lock(conn->out_mu);
    conn->outbox += encode_frame(response_to_json(resp).dump());
  };

  auto hello_reply = [&](int64_t id) {
    Response resp;
    resp.id = id;
    resp.has_hello = true;
    resp.hello.min_version = kMinProtocolVersion;
    resp.hello.max_version = kProtocolVersion;
    resp.hello.role = opts_.role;
    resp.hello.draining = draining_.load();
    reply(resp);
  };

  std::string parse_err;
  auto doc = json::parse(payload, &parse_err);
  if (!doc || !doc->is_object()) {
    Response resp;
    resp.status = Status::ProtocolError;
    resp.error = doc ? "request must be a JSON object"
                     : "malformed JSON payload: " + parse_err;
    reply(resp);
    conn->closing = true;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.protocol_errors;
    return;
  }

  // Negotiation happens before strict decoding: a `hello` is answered for
  // ANY claimed version, and an out-of-range version draws a structured
  // `unsupported_version` (connection stays open) rather than the fatal
  // `protocol_error` path.
  const json::Value* type_field = doc->find("type");
  if (type_field && type_field->is_string() &&
      type_field->as_string() == "hello") {
    const json::Value* idf = doc->find("id");
    hello_reply(idf ? idf->as_int() : 0);
    return;
  }
  const json::Value* vf = doc->find("v");
  int claimed = vf ? static_cast<int>(vf->as_int()) : kProtocolVersion;
  if (claimed < kMinProtocolVersion || claimed > kProtocolVersion) {
    const json::Value* idf = doc->find("id");
    Response resp;
    resp.id = idf ? idf->as_int() : 0;
    resp.status = Status::UnsupportedVersion;
    resp.error = "protocol version " + std::to_string(claimed) +
                 " outside supported range [" +
                 std::to_string(kMinProtocolVersion) + ", " +
                 std::to_string(kProtocolVersion) + "]; send `hello`";
    reply(resp);
    return;
  }

  Request req;
  std::string decode_err;
  if (!request_from_json(*doc, &req, &decode_err)) {
    Response resp;
    resp.status = Status::ProtocolError;
    resp.error = decode_err;
    reply(resp);
    conn->closing = true;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.protocol_errors;
    return;
  }

  if (request_type_requires_v3(req.type) && req.version < 3) {
    Response resp;
    resp.id = req.id;
    resp.status = Status::UnsupportedVersion;
    resp.error = std::string(request_type_name(req.type)) +
                 " requires protocol v3 (request claimed v" +
                 std::to_string(req.version) + ")";
    reply(resp);
    return;
  }

  switch (req.type) {
    case RequestType::Ping: {
      Response resp;
      resp.id = req.id;
      reply(resp);
      return;
    }
    case RequestType::Hello: {
      hello_reply(req.id);
      return;
    }
    case RequestType::Metrics: {
      Response resp;
      resp.id = req.id;
      resp.metrics = build_metrics();
      reply(resp);
      return;
    }
    case RequestType::Register:
    case RequestType::Heartbeat:
    case RequestType::CacheProbe:
    case RequestType::CacheFill: {
      // Fleet control plane: answered synchronously on the loop thread
      // (handlers are lock-and-copy, never compile).
      Response resp;
      resp.id = req.id;
      if (!opts_.control || !opts_.control(req, &resp)) {
        resp.status = Status::Error;
        resp.error = std::string(request_type_name(req.type)) +
                     " not supported: not a fleet endpoint";
      }
      resp.id = req.id;
      reply(resp);
      return;
    }
    case RequestType::Compile:
    case RequestType::Run:
    case RequestType::Forward: {
      if (draining_.load()) {
        Response resp;
        resp.id = req.id;
        resp.status = Status::Overloaded;
        resp.error = "server is draining";
        reply(resp);
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.rejected_overload;
        return;
      }
      auto job = std::make_shared<JobState>();
      job->conn_id = conn->id;
      int64_t timeout = req.deadline_ms > 0 ? req.deadline_ms
                                            : opts_.request_timeout_ms;
      job->deadline = timeout > 0
                          ? clock::now() + std::chrono::milliseconds(timeout)
                          : clock::time_point::max();
      job->req = std::move(req);
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        if (queue_.size() >= opts_.max_queue) {
          Response resp;
          resp.id = job->req.id;
          resp.status = Status::Overloaded;
          resp.error = "admission queue full (" +
                       std::to_string(opts_.max_queue) + " requests)";
          reply(resp);
          std::lock_guard<std::mutex> slock(stats_mu_);
          ++stats_.rejected_overload;
          return;
        }
        queue_.push_back(job);
        std::lock_guard<std::mutex> slock(stats_mu_);
        ++stats_.accepted;
        stats_.queue_depth_peak = std::max(
            stats_.queue_depth_peak, static_cast<int64_t>(queue_.size()));
      }
      conn->inflight.fetch_add(1);  // idle sweep must not reap mid-request
      queue_cv_.notify_one();
      if (job->deadline != clock::time_point::max())
        deadline_watch_.push_back(job);
      return;
    }
  }
}

void Server::flush_connection(const std::shared_ptr<Connection>& conn) {
  bool close_now = false;
  {
    std::lock_guard<std::mutex> out_lock(conn->out_mu);
    while (!conn->outbox.empty()) {
      ssize_t n = ::send(conn->fd, conn->outbox.data(), conn->outbox.size(),
                         MSG_NOSIGNAL);
      if (n > 0) {
        conn->outbox.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      close_now = true;  // broken pipe / reset
      break;
    }
    if (conn->outbox.empty() && conn->closing) close_now = true;
  }
  if (close_now) close_connection(conn->id);
}

void Server::close_connection(uint64_t conn_id) {
  std::shared_ptr<Connection> conn;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    conn = it->second;
    conns_.erase(it);
  }
  ::close(conn->fd);
  conn->fd = -1;
}

void Server::sweep_deadlines(clock::time_point now) {
  for (auto& job : deadline_watch_) {
    if (!job) continue;
    int phase = job->phase.load();
    if (phase == kDone || phase == kAbandoned) {
      job.reset();
      continue;
    }
    if (now < job->deadline) continue;
    // Expired while queued or running: abandon, answer now. The CAS loses
    // only to a worker completing at this instant — then the real answer
    // is already on its way and this sweep does nothing.
    int expected = kPending;
    bool abandoned = job->phase.compare_exchange_strong(expected, kAbandoned);
    if (!abandoned) {
      expected = kRunning;
      abandoned = job->phase.compare_exchange_strong(expected, kAbandoned);
    }
    if (abandoned) {
      Response resp;
      resp.id = job->req.id;
      resp.status = Status::DeadlineExceeded;
      resp.error = "request missed its deadline";
      deliver(job->conn_id, resp);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.timed_out;
    }
    job.reset();
  }
  deadline_watch_.erase(
      std::remove(deadline_watch_.begin(), deadline_watch_.end(), nullptr),
      deadline_watch_.end());
}

void Server::sweep_idle(clock::time_point now) {
  int64_t now_ms = steady_ms(now);
  std::vector<uint64_t> reap;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, conn] : conns_) {
      if (conn->closing) continue;
      if (conn->inflight.load() > 0) continue;
      {
        std::lock_guard<std::mutex> out_lock(conn->out_mu);
        if (!conn->outbox.empty()) continue;
      }
      if (now_ms - conn->last_activity_ms.load() >= opts_.idle_timeout_ms)
        reap.push_back(id);
    }
  }
  for (uint64_t id : reap) close_connection(id);
  if (!reap.empty()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.idle_closed += reap.size();
  }
}

json::Value Server::build_metrics() const {
  json::Value out = json::Value::object();
  if (opts_.scheduler && opts_.scheduler->cache()) {
    service::CacheStats cs = opts_.scheduler->cache()->stats();
    json::Value cache = json::Value::object();
    cache.set("memory_hits", cs.memory_hits)
        .set("disk_hits", cs.disk_hits)
        .set("misses", cs.misses)
        .set("stores", cs.stores)
        .set("evictions", cs.evictions)
        .set("disk_evictions", cs.disk_evictions)
        .set("disk_bytes", cs.disk_bytes);
    out.set("cache", std::move(cache));
  }
  service::ServerStats ss = stats();
  json::Value server = json::Value::object();
  server.set("connections", ss.connections)
      .set("accepted", ss.accepted)
      .set("completed", ss.completed)
      .set("rejected_overload", ss.rejected_overload)
      .set("timed_out", ss.timed_out)
      .set("protocol_errors", ss.protocol_errors)
      .set("idle_closed", ss.idle_closed)
      .set("queue_depth_peak", ss.queue_depth_peak)
      .set("role", opts_.role)
      .set("draining", draining_.load());
  out.set("server", std::move(server));
  if (opts_.extra_metrics) opts_.extra_metrics(&out);
  return out;
}

bool Server::deliver(uint64_t conn_id, const Response& resp) {
  std::shared_ptr<Connection> conn;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return false;  // client went away
    conn = it->second;
  }
  {
    std::lock_guard<std::mutex> out_lock(conn->out_mu);
    conn->outbox += encode_frame(response_to_json(resp).dump());
  }
  conn->last_activity_ms.store(steady_ms());
  conn->inflight.fetch_sub(1);  // exactly one deliver per admitted job
  nudge();
  return true;
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

void Server::worker_main() {
  while (true) {
    std::shared_ptr<JobState> job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return !queue_.empty() || queue_closed_; });
      if (queue_.empty()) return;  // closed and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++jobs_running_;
    }

    int expected = kPending;
    if (job->phase.compare_exchange_strong(expected, kRunning)) {
      Response resp = execute(job->req);
      expected = kRunning;
      if (job->phase.compare_exchange_strong(expected, kDone)) {
        deliver(job->conn_id, resp);
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.completed;
      }
      // else: abandoned mid-run — the loop already answered
      // deadline_exceeded; this result is discarded.
    }

    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --jobs_running_;
    }
    nudge();  // let the loop re-evaluate drain completion
  }
}

Response Server::execute(const Request& req) {
  if (opts_.executor) {
    // Pluggable dispatch (the coordinator's shard/forward/failover path).
    Response resp = opts_.executor(req);
    resp.id = req.id;
    return resp;
  }

  // A forward is the coordinator-wrapped form of compile/run; unwrap it
  // and serve the inner request locally (workers never re-forward).
  RequestType effective =
      req.type == RequestType::Forward ? req.inner : req.type;

  Response resp;
  resp.id = req.id;
  try {
    service::CompileJob job;
    job.app.name = req.name.empty() ? "WIRE" : req.name;
    job.app.source = req.source;
    job.app.annotations = req.annotations;
    job.opts = req.options;

    if (effective == RequestType::Compile) {
      auto t0 = clock::now();
      resp.result = opts_.scheduler->run_one(job);
      resp.has_result = true;
      if (!resp.result.ok) {
        resp.status = Status::Error;
        resp.error = "compilation failed: " + resp.result.error;
      }
      if (opts_.telemetry) {
        service::JobRecord rec;
        rec.app = job.app.name;
        rec.config = driver::config_name(job.opts.config);
        rec.ok = resp.result.ok;
        rec.cache_hit = resp.result.cache_hit;
        rec.wall_ms = ms_since(t0);
        rec.dep_tests = resp.result.dep_tests;
        rec.dep_tests_unique = resp.result.dep_tests_unique;
        rec.parallel_loops = resp.result.parallel_loops.size();
        rec.code_lines = resp.result.code_lines;
        if (!resp.result.cache_hit) rec.timings = resp.result.timings;
        opts_.telemetry->record_job(rec);
      }
      return resp;
    }

    // Run: execution needs the live AST with its OMP metadata (the cached
    // program text parses the directives as comments), so run the pipeline
    // directly instead of through the cache.
    auto pr = driver::run_pipeline(job.app, job.opts);
    resp.result = service::to_compile_result(pr);
    resp.has_result = true;
    if (!pr.ok || !pr.program) {
      resp.status = Status::Error;
      resp.error = "compilation failed: " + pr.error;
      return resp;
    }
    auto t0 = clock::now();
    interp::Interpreter interp(*pr.program, req.interp);
    interp::RunResult rr = interp.run();
    double wall_ms = ms_since(t0);
    resp.has_run = true;
    resp.run.ok = rr.ok;
    resp.run.stopped = rr.stopped;
    resp.run.stop_message = rr.stop_message;
    resp.run.error = rr.error;
    resp.run.output = rr.output;
    resp.run.statements = rr.statements_executed;
    resp.run.statements_parallel = rr.statements_in_parallel;
    resp.run.instructions = rr.instructions_executed;
    resp.run.wall_ms = wall_ms;
    if (!rr.ok) {
      resp.status = Status::Error;
      resp.error = "execution failed: " + rr.error;
    }
    if (opts_.telemetry) {
      service::ExecRecord er;
      er.app = job.app.name;
      er.config = driver::config_name(job.opts.config);
      er.engine =
          req.interp.engine == interp::Engine::Tree ? "tree" : "bytecode";
      er.threads = req.interp.num_threads;
      er.ok = rr.ok;
      er.wall_ms = wall_ms;
      er.bytecode_compile_ms = rr.bytecode_compile_ms;
      er.instructions = rr.instructions_executed;
      er.statements = rr.statements_executed;
      er.statements_parallel = rr.statements_in_parallel;
      opts_.telemetry->record_exec(er);
    }
  } catch (const std::exception& e) {
    resp.status = Status::Error;
    resp.error = std::string("internal error: ") + e.what();
  }
  return resp;
}

}  // namespace ap::net
