#include "net/server.h"

#ifdef AP_NET_USE_POLL
#include <poll.h>
#else
#include <sys/epoll.h>
#endif
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "interp/interp.h"
#include "net/binproto.h"

namespace ap::net {

namespace {

using clock = std::chrono::steady_clock;

constexpr char kWakeDrain = 'q';
constexpr char kWakeNudge = 'n';
constexpr char kWakeDump = 'u';  // SIGUSR1 hook: dump the flight recorder

#ifndef AP_NET_USE_POLL
// epoll_event.data.u64 tags: connection ids start at 1, so these two
// sentinels can never collide with one.
constexpr uint64_t kWakeTag = 0;
constexpr uint64_t kListenTag = UINT64_MAX;
#endif

double ms_since(clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(clock::now() - t0).count();
}

int64_t steady_ms(clock::time_point t = clock::now()) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             t.time_since_epoch())
      .count();
}

}  // namespace

Server::Server(const ServerOptions& opts)
    : opts_(opts),
      flight_(opts.flight_capacity),
      traces_(opts.trace_capacity) {
  if (opts_.threads < 1) opts_.threads = 1;
  if (opts_.max_queue < 1) opts_.max_queue = 1;
}

Server::~Server() {
  if (started_ && !stopped_.load()) {
    begin_drain();
    wait();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_r_ >= 0) ::close(wake_r_);
  if (wake_w_ >= 0) ::close(wake_w_);
}

bool Server::start(std::string* err) {
  if (!opts_.scheduler && !opts_.executor) {
    if (err) *err = "ServerOptions.scheduler is required (or an executor)";
    return false;
  }
  listen_fd_ = listen_tcp(opts_.port, &port_, err);
  if (listen_fd_ < 0) return false;
  set_nonblocking(listen_fd_);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    if (err) *err = "pipe failed";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  wake_r_ = pipe_fds[0];
  wake_w_ = pipe_fds[1];
  set_nonblocking(wake_r_);
  set_nonblocking(wake_w_);

#ifndef AP_NET_USE_POLL
  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) {
    if (err) *err = "epoll_create1 failed";
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::close(wake_r_);
    ::close(wake_w_);
    wake_r_ = wake_w_ = -1;
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_r_, &ev);
  ev.data.u64 = kListenTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
#endif

  started_ = true;
  for (int i = 0; i < opts_.threads; ++i)
    workers_.emplace_back([this] { worker_main(); });
  loop_thread_ = std::thread([this] { loop_main(); });
  return true;
}

void Server::begin_drain() {
  if (wake_w_ >= 0) {
    char c = kWakeDrain;
    [[maybe_unused]] ssize_t n = ::write(wake_w_, &c, 1);
  }
}

void Server::nudge() {
  if (wake_w_ >= 0) {
    char c = kWakeNudge;
    [[maybe_unused]] ssize_t n = ::write(wake_w_, &c, 1);
  }
}

void Server::wait() {
  if (!started_) return;
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
  stopped_.store(true);
  if (opts_.telemetry) opts_.telemetry->record_server_stats(stats());
}

service::ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

int64_t Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return static_cast<int64_t>(queue_.size());
}

int64_t Server::jobs_running() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return jobs_running_;
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void Server::loop_main() {
  clock::time_point drain_deadline = clock::time_point::max();

  // Normalized readiness, shared by the epoll and poll paths.
  struct Ready {
    uint64_t id;
    bool readable, writable, errored;
  };
  std::vector<Ready> ready;
#ifdef AP_NET_USE_POLL
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn;  // conn id per pollfd slot (0 = not a conn)
#else
  std::array<epoll_event, 128> events;
#endif

  while (true) {
    // Wait timeout: nearest deadline (request or drain), else idle tick.
    auto now = clock::now();
    clock::time_point nearest = drain_deadline;
    for (const auto& job : deadline_watch_)
      nearest = std::min(nearest, job->deadline);
    int timeout_ms = -1;
    if (nearest != clock::time_point::max()) {
      auto delta =
          std::chrono::duration_cast<std::chrono::milliseconds>(nearest - now)
              .count();
      timeout_ms = static_cast<int>(std::clamp<int64_t>(delta, 0, 60'000));
    }
    // With live connections and idle reaping on, wake often enough that a
    // silent peer is noticed without any readiness on its socket.
    if (opts_.idle_timeout_ms > 0) {
      bool have_conns;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        have_conns = !conns_.empty();
      }
      if (have_conns) {
        int tick = static_cast<int>(
            std::clamp<int64_t>(opts_.idle_timeout_ms / 4, 10, 60'000));
        if (timeout_ms < 0 || tick < timeout_ms) timeout_ms = tick;
      }
    }

    bool wake_ready = false;
    bool accept_ready = false;
    ready.clear();

#ifdef AP_NET_USE_POLL
    fds.clear();
    fd_conn.clear();
    fds.push_back({wake_r_, POLLIN, 0});
    fd_conn.push_back(0);
    size_t listen_slot = 0;
    if (!draining_.load() && listen_fd_ >= 0) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_conn.push_back(0);
      listen_slot = fds.size() - 1;
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto& [id, conn] : conns_) {
        short want = 0;
        if (!conn->closing) want |= POLLIN;
        {
          std::lock_guard<std::mutex> out_lock(conn->out_mu);
          if (conn->out_bytes() > 0) want |= POLLOUT;
        }
        if (want == 0) want = POLLERR;  // still watch for hangup
        fds.push_back({conn->fd, want, 0});
        fd_conn.push_back(id);
      }
    }
    ::poll(fds.data(), fds.size(), timeout_ms);
    wake_ready = (fds[0].revents & POLLIN) != 0;
    accept_ready =
        listen_slot != 0 && (fds[listen_slot].revents & POLLIN) != 0;
    for (size_t i = 0; i < fds.size(); ++i) {
      if (fd_conn[i] == 0 || fds[i].revents == 0) continue;
      short re = fds[i].revents;
      ready.push_back({fd_conn[i], (re & (POLLIN | POLLHUP)) != 0,
                       (re & POLLOUT) != 0,
                       (re & (POLLERR | POLLNVAL)) != 0});
    }
#else
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), timeout_ms);
    for (int i = 0; i < n; ++i) {
      uint64_t tag = events[i].data.u64;
      uint32_t ev = events[i].events;
      if (tag == kWakeTag) {
        wake_ready = true;
      } else if (tag == kListenTag) {
        accept_ready = true;
      } else {
        ready.push_back({tag, (ev & (EPOLLIN | EPOLLHUP)) != 0,
                         (ev & EPOLLOUT) != 0, (ev & EPOLLERR) != 0});
      }
    }
#endif
    now = clock::now();

    // Wake pipe: drain any pending bytes; 'q' starts the drain, 'u' dumps
    // the flight recorder (the async-signal-safe SIGUSR1 hook).
    if (wake_ready) {
      char buf[256];
      ssize_t m;
      while ((m = ::read(wake_r_, buf, sizeof(buf))) > 0) {
        for (ssize_t i = 0; i < m; ++i) {
          if (buf[i] == kWakeDrain && !draining_.load()) {
            draining_.store(true);
            drain_deadline =
                opts_.drain_timeout_ms > 0
                    ? now + std::chrono::milliseconds(opts_.drain_timeout_ms)
                    : clock::time_point::max();
            ::close(listen_fd_);  // epoll deregisters closed fds itself
            listen_fd_ = -1;
          } else if (buf[i] == kWakeDump) {
            std::fprintf(stderr,
                         "apserved[%s]: flight recorder dump (%llu events "
                         "recorded, ring of %zu):\n%s",
                         opts_.role.c_str(),
                         static_cast<unsigned long long>(flight_.recorded()),
                         flight_.capacity(), flight_.dump().c_str());
          }
        }
      }
    }

    if (!draining_.load() && listen_fd_ >= 0 && accept_ready)
      accept_new_connections();

    // Socket I/O per connection (handlers mutate conns_, hence the copy
    // into `ready` above).
    for (auto& r : ready) {
      std::shared_ptr<Connection> conn;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        auto it = conns_.find(r.id);
        if (it == conns_.end()) continue;
        conn = it->second;
      }
      if (r.errored) {
        close_connection(r.id);
        continue;
      }
      if (r.readable) read_connection(conn);
      if (r.writable) flush_connection(conn);
    }

    sweep_deadlines(now);
    if (opts_.idle_timeout_ms > 0 && !draining_.load()) sweep_idle(now);

    // Opportunistic flush: handlers above may have queued responses on
    // connections that signaled readable but not writable this round.
    // Under epoll this pass also reconciles each connection's interest
    // mask (EPOLL_CTL_MOD only on change).
    {
      std::vector<std::shared_ptr<Connection>> all;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        all.reserve(conns_.size());
        for (auto& [id, conn] : conns_) all.push_back(conn);
      }
      for (auto& conn : all) {
        flush_connection(conn);
        update_interest(conn);
      }
    }

    if (draining_.load()) {
      bool work_done;
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        work_done = queue_.empty() && jobs_running_ == 0;
        if (work_done && !queue_closed_) {
          queue_closed_ = true;
          queue_cv_.notify_all();
        }
      }
      bool flushed = true;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        for (auto& [id, conn] : conns_) {
          std::lock_guard<std::mutex> out_lock(conn->out_mu);
          if (conn->out_bytes() > 0) flushed = false;
        }
      }
      if ((work_done && flushed) || now >= drain_deadline) break;
    }
  }

  // Drain complete (or timed out): close every connection.
  std::vector<uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, conn] : conns_) ids.push_back(id);
  }
  for (uint64_t id : ids) close_connection(id);
}

void Server::accept_new_connections() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;  // EAGAIN or transient error: try next loop round
    set_nonblocking(fd);
    // Nagle off: pipelined clients stream small response frames back to
    // back, and coalescing them behind delayed ACKs costs ~40ms stalls.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(opts_.max_frame_bytes);
    conn->fd = fd;
    conn->last_activity_ms.store(steady_ms());
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn->id = next_conn_id_++;
      conns_[conn->id] = conn;
    }
#ifndef AP_NET_USE_POLL
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conn->epoll_mask = EPOLLIN;
#endif
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.connections;
  }
}

void Server::update_interest(const std::shared_ptr<Connection>& conn) {
#ifndef AP_NET_USE_POLL
  if (epoll_fd_ < 0 || conn->fd < 0) return;
  uint32_t want = conn->closing ? 0u : static_cast<uint32_t>(EPOLLIN);
  {
    std::lock_guard<std::mutex> out_lock(conn->out_mu);
    if (conn->out_bytes() > 0) want |= EPOLLOUT;
  }
  if (want == conn->epoll_mask) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  conn->epoll_mask = want;
#else
  (void)conn;  // poll interest is rebuilt from scratch each round
#endif
}

void Server::read_connection(const std::shared_ptr<Connection>& conn) {
  char buf[64 * 1024];
  while (true) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->last_activity_ms.store(steady_ms());
      conn->reader.feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {  // half-open or orderly close from the client
      close_connection(conn->id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(conn->id);
    return;
  }

  // Decode straight from the reader's buffer — the view stays valid
  // through handle_frame (nothing feeds the reader inside it).
  while (auto payload = conn->reader.next_view()) {
    handle_frame(conn, *payload);
    if (conn->closing) return;  // protocol error: stop consuming the stream
  }
  if (conn->reader.error() && !conn->closing) {
    Response resp;
    resp.status = Status::ProtocolError;
    resp.error = conn->reader.error_message();
    enqueue_response(conn, resp, false);
    conn->closing = true;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.protocol_errors;
  }
}

void Server::enqueue_response(const std::shared_ptr<Connection>& conn,
                              const Response& resp, bool binary) {
  if (binary) {
    bool sample;
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      sample = (binary_reply_tick_++ % kBytesSavedSampleStride) == 0;
    }
    size_t bin_payload;
    {
      std::lock_guard<std::mutex> out_lock(conn->out_mu);
      size_t hdr = begin_frame(&conn->out_back);
      encode_response_binary(resp, &conn->out_back);
      end_frame(&conn->out_back, hdr);
      bin_payload = conn->out_back.size() - hdr - 4;
    }
    if (sample) {
      // The comparison JSON-encodes the whole response, so it is sampled
      // sparsely — it must not tax the warm fast path it is measuring.
      size_t json_payload = response_to_json(resp).dump().size();
      if (json_payload > bin_payload) {
        std::lock_guard<std::mutex> slock(stats_mu_);
        stats_.bytes_saved_vs_json +=
            (json_payload - bin_payload) * kBytesSavedSampleStride;
      }
    }
  } else {
    std::string payload = response_to_json(resp).dump();
    std::lock_guard<std::mutex> out_lock(conn->out_mu);
    append_frame(&conn->out_back, payload);
  }
}

void Server::handle_frame(const std::shared_ptr<Connection>& conn,
                          std::string_view payload) {
  const auto t_frame = clock::now();
  // Codec dispatch: binary TLV frames open with 0xB4, JSON with '{'.
  // The reply always travels in the codec its request arrived in.
  const bool bin = is_binary_frame(payload);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (bin)
      ++stats_.binary_requests;
    else
      ++stats_.json_requests;
  }

  auto reply = [&](const Response& resp) {
    enqueue_response(conn, resp, bin);
  };

  auto hello_reply = [&](int64_t id) {
    Response resp;
    resp.id = id;
    resp.has_hello = true;
    resp.hello.min_version = kMinProtocolVersion;
    resp.hello.max_version = kProtocolVersion;
    resp.hello.role = opts_.role;
    resp.hello.draining = draining_.load();
    resp.hello.binary = true;
    reply(resp);
  };

  auto protocol_error = [&](std::string why) {
    Response resp;
    resp.status = Status::ProtocolError;
    resp.error = std::move(why);
    reply(resp);
    conn->closing = true;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.protocol_errors;
  };

  auto unsupported = [&](int64_t id, std::string why) {
    Response resp;
    resp.id = id;
    resp.status = Status::UnsupportedVersion;
    resp.error = std::move(why);
    reply(resp);
  };

  Request req;
  if (bin) {
    // The binary decoder validates structure but not the version range,
    // so an out-of-range claim can still draw the structured non-fatal
    // `unsupported_version` (same contract as JSON).
    std::string decode_err;
    if (!decode_request_binary(payload, &req, &decode_err)) {
      protocol_error(std::move(decode_err));
      return;
    }
    if (req.type == RequestType::Hello) {
      hello_reply(req.id);
      return;
    }
    if (req.version < kMinProtocolVersion || req.version > kProtocolVersion) {
      unsupported(req.id, "protocol version " + std::to_string(req.version) +
                              " outside supported range [" +
                              std::to_string(kMinProtocolVersion) + ", " +
                              std::to_string(kProtocolVersion) +
                              "]; send `hello`");
      return;
    }
  } else {
    std::string parse_err;
    auto doc = json::parse(payload, &parse_err);
    if (!doc || !doc->is_object()) {
      protocol_error(doc ? "request must be a JSON object"
                         : "malformed JSON payload: " + parse_err);
      return;
    }

    // Negotiation happens before strict decoding: a `hello` is answered
    // for ANY claimed version, and an out-of-range version draws a
    // structured `unsupported_version` (connection stays open) rather
    // than the fatal `protocol_error` path.
    const json::Value* type_field = doc->find("type");
    if (type_field && type_field->is_string() &&
        type_field->as_string() == "hello") {
      const json::Value* idf = doc->find("id");
      hello_reply(idf ? idf->as_int() : 0);
      return;
    }
    const json::Value* vf = doc->find("v");
    int claimed = vf ? static_cast<int>(vf->as_int()) : kProtocolVersion;
    if (claimed < kMinProtocolVersion || claimed > kProtocolVersion) {
      const json::Value* idf = doc->find("id");
      unsupported(idf ? idf->as_int() : 0,
                  "protocol version " + std::to_string(claimed) +
                      " outside supported range [" +
                      std::to_string(kMinProtocolVersion) + ", " +
                      std::to_string(kProtocolVersion) + "]; send `hello`");
      return;
    }

    std::string decode_err;
    if (!request_from_json(*doc, &req, &decode_err)) {
      protocol_error(std::move(decode_err));
      return;
    }
  }

  if (request_type_requires_v3(req.type) && req.version < 3) {
    unsupported(req.id, std::string(request_type_name(req.type)) +
                            " requires protocol v3 (request claimed v" +
                            std::to_string(req.version) + ")");
    return;
  }
  if ((request_type_requires_v4(req.type) ||
       (req.type == RequestType::Forward &&
        req.inner == RequestType::CompileBatch)) &&
      req.version < 4) {
    unsupported(req.id, std::string(request_type_name(req.type)) +
                            (req.type == RequestType::Forward ? " of compile_batch"
                                                              : "") +
                            " requires protocol v4 (request claimed v" +
                            std::to_string(req.version) + ")");
    return;
  }
  if (request_type_requires_v5(req.type) && req.version < 5) {
    unsupported(req.id, std::string(request_type_name(req.type)) +
                            " requires protocol v5 (request claimed v" +
                            std::to_string(req.version) + ")");
    return;
  }
  if (request_type_requires_v6(req.type) && req.version < 6) {
    unsupported(req.id, std::string(request_type_name(req.type)) +
                            " requires protocol v6 (request claimed v" +
                            std::to_string(req.version) + ")");
    return;
  }

  switch (req.type) {
    case RequestType::Ping: {
      Response resp;
      resp.id = req.id;
      reply(resp);
      record_latency(req.type, ms_since(t_frame));
      return;
    }
    case RequestType::Hello: {
      hello_reply(req.id);
      return;
    }
    case RequestType::Metrics: {
      Response resp;
      resp.id = req.id;
      resp.metrics = build_metrics();
      reply(resp);
      record_latency(req.type, ms_since(t_frame));
      return;
    }
    case RequestType::Stats: {
      // The live stats plane: histogram summaries + trace/flight counters,
      // answered inline on the loop thread — polling a busy daemon never
      // queues behind compile work or drains anything.
      Response resp;
      resp.id = req.id;
      resp.metrics = build_stats();
      reply(resp);
      record_latency(req.type, ms_since(t_frame));
      return;
    }
    case RequestType::Register:
    case RequestType::Heartbeat:
    case RequestType::CacheProbe:
    case RequestType::CacheFill:
    case RequestType::UnitProbe:
    case RequestType::UnitFill: {
      // Fleet control plane: answered synchronously on the loop thread
      // (handlers are lock-and-copy, never compile).
      Response resp;
      resp.id = req.id;
      if (!opts_.control || !opts_.control(req, &resp)) {
        resp.status = Status::Error;
        resp.error = std::string(request_type_name(req.type)) +
                     " not supported: not a fleet endpoint";
      }
      resp.id = req.id;
      reply(resp);
      double wall = ms_since(t_frame);
      record_latency(req.type, wall);
      // Cache probes/fills carry the originating request's trace id, so
      // the flight recorder correlates a peer hop with the request that
      // caused it. Heartbeats/registers are periodic noise — not recorded.
      if (req.type == RequestType::CacheProbe ||
          req.type == RequestType::CacheFill ||
          req.type == RequestType::UnitProbe ||
          req.type == RequestType::UnitFill) {
        record_flight(req.trace_id, req.id, request_type_name(req.type),
                      resp.status == Status::Ok ? "ok" : "error", wall, "");
      }
      return;
    }
    case RequestType::Compile:
    case RequestType::Run:
    case RequestType::Forward:
    case RequestType::CompileBatch: {
      if (draining_.load()) {
        Response resp;
        resp.id = req.id;
        resp.status = Status::Overloaded;
        resp.error = "server is draining";
        reply(resp);
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.rejected_overload;
        return;
      }
      // Trace context is minted at admission: a traced request arriving
      // without an id gets one here (the fleet entry point); a forwarded
      // hop keeps the id the coordinator stamped on it, so every span the
      // fleet records for this request correlates.
      if (req.trace && req.trace_id == 0) req.trace_id = mint_trace_id();
      // Warm-hit fast path: a compile whose result already sits in the
      // memory cache is answered inline — no queue hop, no worker
      // wake-up, no per-frame allocation. Only pure compiles qualify
      // (runs execute, batches fan out, a pluggable executor owns its
      // own routing), and only the memory tier is probed so the loop
      // thread never blocks on disk.
      if (!opts_.executor && opts_.scheduler) {
        RequestType effective =
            req.type == RequestType::Forward ? req.inner : req.type;
        if (effective == RequestType::Compile) {
          if (service::ResultCache* cache = opts_.scheduler->cache()) {
            uint64_t key = service::cache_key(req.source, req.annotations,
                                              req.options);
            if (auto hit = cache->find_memory(key)) {
              Response resp;
              resp.id = req.id;
              resp.has_result = true;
              resp.result = std::move(*hit);
              resp.result.cache_hit = true;
              if (!resp.result.ok) {
                resp.status = Status::Error;
                resp.error = "compilation failed: " + resp.result.error;
              }
              if (opts_.telemetry) {
                service::JobRecord rec;
                rec.app = req.name.empty() ? "WIRE" : req.name;
                rec.config = driver::config_name(req.options.config);
                rec.ok = resp.result.ok;
                rec.cache_hit = true;
                rec.dep_tests = resp.result.dep_tests;
                rec.dep_tests_unique = resp.result.dep_tests_unique;
                rec.parallel_loops = resp.result.parallel_loops.size();
                rec.code_lines = resp.result.code_lines;
                opts_.telemetry->record_job(rec);
              }
              double wall = ms_since(t_frame);
              if (req.trace) {
                obs::Span root{"request", "compile fastpath", wall, {}};
                root.children.push_back({"cache", "memory_hit", wall, {}});
                resp.trace = obs::span_to_json(root);
                traces_.record(req.trace_id, resp.trace);
              }
              reply(resp);
              record_latency(req.type, wall);
              record_cache_outcome("memory_hit", wall);
              record_flight(req.trace_id, req.id,
                            request_type_name(req.type), "memory_hit", wall,
                            "cache memory_hit");
              std::lock_guard<std::mutex> lock(stats_mu_);
              ++stats_.accepted;
              ++stats_.completed;
              return;
            }
          }
        }
      }
      auto job = std::make_shared<JobState>();
      job->conn_id = conn->id;
      job->binary = bin;
      int64_t timeout = req.deadline_ms > 0 ? req.deadline_ms
                                            : opts_.request_timeout_ms;
      job->deadline = timeout > 0
                          ? clock::now() + std::chrono::milliseconds(timeout)
                          : clock::time_point::max();
      job->t_admit = t_frame;
      job->req = std::move(req);
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        if (queue_.size() >= opts_.max_queue) {
          Response resp;
          resp.id = job->req.id;
          resp.status = Status::Overloaded;
          resp.error = "admission queue full (" +
                       std::to_string(opts_.max_queue) + " requests)";
          reply(resp);
          std::lock_guard<std::mutex> slock(stats_mu_);
          ++stats_.rejected_overload;
          return;
        }
        queue_.push_back(job);
        std::lock_guard<std::mutex> slock(stats_mu_);
        ++stats_.accepted;
        stats_.queue_depth_peak = std::max(
            stats_.queue_depth_peak, static_cast<int64_t>(queue_.size()));
      }
      // Idle sweep must not reap mid-request; the post-increment depth is
      // the connection's current pipelining depth.
      int depth = conn->inflight.fetch_add(1) + 1;
      {
        std::lock_guard<std::mutex> slock(stats_mu_);
        stats_.pipeline_depth_peak =
            std::max(stats_.pipeline_depth_peak, static_cast<int64_t>(depth));
      }
      queue_cv_.notify_one();
      if (job->deadline != clock::time_point::max())
        deadline_watch_.push_back(job);
      return;
    }
  }
}

void Server::flush_connection(const std::shared_ptr<Connection>& conn) {
  bool close_now = false;
  {
    std::lock_guard<std::mutex> out_lock(conn->out_mu);
    while (conn->out_bytes() > 0) {
      if (conn->front_pos == conn->out_front.size()) {
        // Front drained: O(1) role swap, capacities recycled.
        conn->out_front.clear();
        conn->front_pos = 0;
        std::swap(conn->out_front, conn->out_back);
      }
      iovec iov[2];
      iov[0].iov_base = conn->out_front.data() + conn->front_pos;
      iov[0].iov_len = conn->out_front.size() - conn->front_pos;
      int iovcnt = 1;
      if (!conn->out_back.empty()) {
        iov[1].iov_base = conn->out_back.data();
        iov[1].iov_len = conn->out_back.size();
        iovcnt = 2;
      }
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = iovcnt;
      ssize_t n = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
      if (n > 0) {
        size_t front_rem = iov[0].iov_len;
        if (static_cast<size_t>(n) <= front_rem) {
          conn->front_pos += static_cast<size_t>(n);
        } else {
          // The write ran into the back buffer: the front is fully sent;
          // promote the back to front with the spill consumed.
          size_t into_back = static_cast<size_t>(n) - front_rem;
          conn->out_front.clear();
          std::swap(conn->out_front, conn->out_back);
          conn->front_pos = into_back;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      close_now = true;  // broken pipe / reset
      break;
    }
    if (conn->out_bytes() == 0) {
      conn->out_front.clear();
      conn->front_pos = 0;
      if (conn->closing) close_now = true;
    }
  }
  if (close_now) close_connection(conn->id);
}

void Server::close_connection(uint64_t conn_id) {
  std::shared_ptr<Connection> conn;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    conn = it->second;
    conns_.erase(it);
  }
#ifndef AP_NET_USE_POLL
  if (epoll_fd_ >= 0) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
#endif
  ::close(conn->fd);
  conn->fd = -1;
}

void Server::sweep_deadlines(clock::time_point now) {
  for (auto& job : deadline_watch_) {
    if (!job) continue;
    int phase = job->phase.load();
    if (phase == kDone || phase == kAbandoned) {
      job.reset();
      continue;
    }
    if (now < job->deadline) continue;
    // Expired while queued or running: abandon, answer now. The CAS loses
    // only to a worker completing at this instant — then the real answer
    // is already on its way and this sweep does nothing.
    int expected = kPending;
    bool abandoned = job->phase.compare_exchange_strong(expected, kAbandoned);
    if (!abandoned) {
      expected = kRunning;
      abandoned = job->phase.compare_exchange_strong(expected, kAbandoned);
    }
    if (abandoned) {
      Response resp;
      resp.id = job->req.id;
      resp.status = Status::DeadlineExceeded;
      resp.error = "request missed its deadline";
      deliver(job->conn_id, resp, job->binary);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.timed_out;
    }
    job.reset();
  }
  deadline_watch_.erase(
      std::remove(deadline_watch_.begin(), deadline_watch_.end(), nullptr),
      deadline_watch_.end());
}

void Server::sweep_idle(clock::time_point now) {
  int64_t now_ms = steady_ms(now);
  std::vector<uint64_t> reap;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, conn] : conns_) {
      if (conn->closing) continue;
      if (conn->inflight.load() > 0) continue;
      {
        std::lock_guard<std::mutex> out_lock(conn->out_mu);
        if (conn->out_bytes() > 0) continue;
      }
      if (now_ms - conn->last_activity_ms.load() >= opts_.idle_timeout_ms)
        reap.push_back(id);
    }
  }
  for (uint64_t id : reap) close_connection(id);
  if (!reap.empty()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.idle_closed += reap.size();
  }
}

json::Value Server::build_metrics() const {
  json::Value out = json::Value::object();
  if (opts_.scheduler && opts_.scheduler->cache()) {
    service::CacheStats cs = opts_.scheduler->cache()->stats();
    json::Value cache = json::Value::object();
    cache.set("memory_hits", cs.memory_hits)
        .set("disk_hits", cs.disk_hits)
        .set("misses", cs.misses)
        .set("stores", cs.stores)
        .set("evictions", cs.evictions)
        .set("disk_evictions", cs.disk_evictions)
        .set("disk_bytes", cs.disk_bytes);
    out.set("cache", std::move(cache));
  }
  service::ServerStats ss = stats();
  json::Value server = json::Value::object();
  server.set("connections", ss.connections)
      .set("accepted", ss.accepted)
      .set("completed", ss.completed)
      .set("rejected_overload", ss.rejected_overload)
      .set("timed_out", ss.timed_out)
      .set("protocol_errors", ss.protocol_errors)
      .set("idle_closed", ss.idle_closed)
      .set("queue_depth_peak", ss.queue_depth_peak)
      .set("json_requests", ss.json_requests)
      .set("binary_requests", ss.binary_requests)
      .set("pipeline_depth_peak", ss.pipeline_depth_peak)
      .set("bytes_saved_vs_json", ss.bytes_saved_vs_json)
      .set("batches", ss.batches)
      .set("batch_items", ss.batch_items)
      .set("batch_max", ss.batch_max)
      .set("role", opts_.role)
      .set("draining", draining_.load());
  out.set("server", std::move(server));
  if (opts_.extra_metrics) opts_.extra_metrics(&out);
  return out;
}

json::Value Server::build_stats() const {
  json::Value out = build_metrics();
  json::Value hist = json::Value::object();
  for (auto& [name, snap] : histogram_snapshots())
    hist.set(name, snap.summary_json());
  out.set("hist", std::move(hist));
  json::Value tr = json::Value::object();
  tr.set("recorded", static_cast<int64_t>(traces_.recorded()))
      .set("sampled", static_cast<int64_t>(traces_.size()));
  out.set("traces", std::move(tr));
  json::Value fl = json::Value::object();
  fl.set("recorded", static_cast<int64_t>(flight_.recorded()))
      .set("capacity", static_cast<int64_t>(flight_.capacity()));
  out.set("flight", std::move(fl));
  if (opts_.extra_stats) opts_.extra_stats(&out);
  return out;
}

std::vector<std::pair<std::string, obs::HistogramSnapshot>>
Server::histogram_snapshots() const {
  std::vector<std::pair<std::string, obs::HistogramSnapshot>> out;
  for (size_t i = 0; i < kTypeHistCount; ++i) {
    obs::HistogramSnapshot snap = type_hist_[i].snapshot();
    if (!snap.empty())
      out.emplace_back(request_type_name(static_cast<RequestType>(i)),
                       std::move(snap));
  }
  auto add = [&](const char* name, const obs::Histogram& h) {
    obs::HistogramSnapshot s = h.snapshot();
    if (!s.empty()) out.emplace_back(name, std::move(s));
  };
  add("cache:memory_hit", cache_hist_memory_);
  add("cache:hit", cache_hist_hit_);
  add("cache:peer", cache_hist_peer_);
  add("cache:miss", cache_hist_miss_);
  return out;
}

void Server::record_latency(RequestType type, double wall_ms) {
  size_t i = static_cast<size_t>(type);
  if (i < kTypeHistCount) type_hist_[i].record_ms(wall_ms);
}

void Server::record_cache_outcome(const char* outcome, double wall_ms) {
  obs::Histogram* h = nullptr;
  if (std::strcmp(outcome, "memory_hit") == 0)
    h = &cache_hist_memory_;
  else if (std::strcmp(outcome, "cache_hit") == 0)
    h = &cache_hist_hit_;
  else if (std::strcmp(outcome, "peer_hit") == 0)
    h = &cache_hist_peer_;
  else if (std::strcmp(outcome, "miss") == 0)
    h = &cache_hist_miss_;
  if (h) h->record_ms(wall_ms);
}

void Server::record_flight(uint64_t trace_id, int64_t request_id,
                           const char* type, const char* outcome,
                           double wall_ms, const std::string& digest) {
  obs::FlightEvent ev;
  ev.trace_id = trace_id;
  ev.request_id = request_id;
  ev.type = type;
  ev.outcome = outcome;
  ev.wall_ms = wall_ms;
  ev.digest = digest;
  flight_.record(std::move(ev));
  // A slow request dumps the ring right now — the events *leading up to*
  // it are still in the window.
  if (opts_.slow_ms > 0 && wall_ms >= static_cast<double>(opts_.slow_ms)) {
    std::fprintf(stderr,
                 "apserved[%s]: slow request id=%lld type=%s (%.3fms >= "
                 "--slow-ms %lld); flight recorder:\n%s",
                 opts_.role.c_str(), static_cast<long long>(request_id), type,
                 wall_ms, static_cast<long long>(opts_.slow_ms),
                 flight_.dump().c_str());
  }
}

uint64_t Server::mint_trace_id() {
  // Port + monotonic clock + per-process sequence, mixed through the
  // splitmix64 finalizer so ids from one daemon don't share a prefix.
  uint64_t x = static_cast<uint64_t>(steady_ms()) << 20;
  x ^= static_cast<uint64_t>(port_) << 48;
  x += trace_seq_.fetch_add(1, std::memory_order_relaxed) +
       0x9e3779b97f4a7c15ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x ? x : 1;  // 0 means "untraced" on the wire
}

bool Server::deliver(uint64_t conn_id, const Response& resp, bool binary) {
  std::shared_ptr<Connection> conn;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return false;  // client went away
    conn = it->second;
  }
  enqueue_response(conn, resp, binary);
  conn->last_activity_ms.store(steady_ms());
  conn->inflight.fetch_sub(1);  // exactly one deliver per admitted job
  nudge();
  return true;
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

void Server::worker_main() {
  while (true) {
    std::shared_ptr<JobState> job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return !queue_.empty() || queue_closed_; });
      if (queue_.empty()) return;  // closed and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++jobs_running_;
    }

    int expected = kPending;
    if (job->phase.compare_exchange_strong(expected, kRunning)) {
      const auto t_run = clock::now();
      const bool traced = job->req.trace;
      std::vector<obs::Span> spans;
      Response resp = execute(job->req, traced ? &spans : nullptr);
      const double wall = ms_since(job->t_admit);
      // Outcome label shared by the flight recorder and the per-outcome
      // cache histograms.
      const char* outcome = "ok";
      if (resp.status != Status::Ok)
        outcome = "error";
      else if (resp.has_result)
        outcome = resp.result.peer_hit  ? "peer_hit"
                  : resp.result.cache_hit ? "cache_hit"
                                          : "miss";
      std::string digest;
      if (traced) {
        // Root the phase spans under one "request" span whose wall time
        // is the admission-to-completion interval; the queue span is the
        // admit -> worker-pickup wait the executor never sees.
        obs::Span root{"request", request_type_name(job->req.type), wall, {}};
        root.children.push_back(
            {"queue", "",
             std::chrono::duration<double, std::milli>(t_run - job->t_admit)
                 .count(),
             {}});
        for (auto& s : spans) root.children.push_back(std::move(s));
        for (const auto& c : root.children) {
          if (!digest.empty()) digest += '+';
          digest += c.name;
        }
        resp.trace = obs::span_to_json(root);
        traces_.record(job->req.trace_id, resp.trace);
      }
      record_latency(job->req.type, wall);
      // Cache-outcome histograms are a compile-path concept; runs and
      // batches would skew them.
      RequestType eff = job->req.type == RequestType::Forward
                            ? job->req.inner
                            : job->req.type;
      if (eff == RequestType::Compile && resp.has_result &&
          resp.status == Status::Ok)
        record_cache_outcome(outcome, wall);
      record_flight(job->req.trace_id, job->req.id,
                    request_type_name(job->req.type), outcome, wall, digest);
      expected = kRunning;
      if (job->phase.compare_exchange_strong(expected, kDone)) {
        // Count before delivering: a client that holds the response (and
        // then polls `stats`) must see it reflected in `completed`.
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.completed;
        }
        deliver(job->conn_id, resp, job->binary);
      }
      // else: abandoned mid-run — the loop already answered
      // deadline_exceeded; this result is discarded.
    }

    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --jobs_running_;
    }
    nudge();  // let the loop re-evaluate drain completion
  }
}

Response Server::execute(const Request& req, std::vector<obs::Span>* spans) {
  if (opts_.executor) {
    // Pluggable dispatch (the coordinator's shard/forward/failover path).
    Response resp = opts_.executor(req, spans);
    resp.id = req.id;
    return resp;
  }

  // A forward is the coordinator-wrapped form of compile/run/batch;
  // unwrap it and serve the inner request locally (workers never
  // re-forward).
  RequestType effective =
      req.type == RequestType::Forward ? req.inner : req.type;

  Response resp;
  resp.id = req.id;
  try {
    if (effective == RequestType::CompileBatch) {
      // One frame, N files: each item runs through the cache-aware
      // scheduler on this lane (run_batch's pool is single-batch, and
      // other lanes keep serving other connections meanwhile). Per-item
      // failures stay in their CompileResult; the frame itself is ok.
      resp.has_batch = true;
      resp.batch.reserve(req.batch.size());
      for (const auto& item : req.batch) {
        service::CompileJob job;
        job.app.name = item.name.empty() ? "WIRE" : item.name;
        job.app.source = item.source;
        job.app.annotations = item.annotations;
        job.opts = item.options;
        auto t0 = clock::now();
        obs::Span item_span{"item", job.app.name, 0, {}};
        service::CompileResult r = opts_.scheduler->run_one(
            job, spans ? &item_span : nullptr, req.trace_id);
        if (spans) {
          item_span.wall_ms = ms_since(t0);
          spans->push_back(std::move(item_span));
        }
        if (opts_.telemetry) {
          service::JobRecord rec;
          rec.app = job.app.name;
          rec.config = driver::config_name(job.opts.config);
          rec.ok = r.ok;
          rec.cache_hit = r.cache_hit;
          rec.wall_ms = ms_since(t0);
          rec.dep_tests = r.dep_tests;
          rec.dep_tests_unique = r.dep_tests_unique;
          rec.parallel_loops = r.parallel_loops.size();
          rec.code_lines = r.code_lines;
          if (!r.cache_hit) rec.timings = r.timings;
          opts_.telemetry->record_job(rec);
        }
        resp.batch.push_back(std::move(r));
      }
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.batches;
      stats_.batch_items += req.batch.size();
      stats_.batch_max = std::max(stats_.batch_max,
                                  static_cast<uint64_t>(req.batch.size()));
      return resp;
    }

    service::CompileJob job;
    job.app.name = req.name.empty() ? "WIRE" : req.name;
    job.app.source = req.source;
    job.app.annotations = req.annotations;
    job.opts = req.options;

    if (effective == RequestType::Compile) {
      auto t0 = clock::now();
      // run_one appends its phase spans (cache, peer probes, compile with
      // per-pass children) to a holder; they land flat under the root.
      obs::Span holder;
      resp.result = opts_.scheduler->run_one(job, spans ? &holder : nullptr,
                                             req.trace_id);
      if (spans)
        for (auto& c : holder.children) spans->push_back(std::move(c));
      resp.has_result = true;
      if (!resp.result.ok) {
        resp.status = Status::Error;
        resp.error = "compilation failed: " + resp.result.error;
      }
      if (opts_.telemetry) {
        service::JobRecord rec;
        rec.app = job.app.name;
        rec.config = driver::config_name(job.opts.config);
        rec.ok = resp.result.ok;
        rec.cache_hit = resp.result.cache_hit;
        rec.wall_ms = ms_since(t0);
        rec.dep_tests = resp.result.dep_tests;
        rec.dep_tests_unique = resp.result.dep_tests_unique;
        rec.parallel_loops = resp.result.parallel_loops.size();
        rec.code_lines = resp.result.code_lines;
        if (!resp.result.cache_hit) rec.timings = resp.result.timings;
        opts_.telemetry->record_job(rec);
      }
      return resp;
    }

    // Run: execution needs the live AST with its OMP metadata (the cached
    // program text parses the directives as comments), so run the pipeline
    // directly instead of through the cache.
    auto t_compile = clock::now();
    auto pr = driver::run_pipeline(job.app, job.opts);
    resp.result = service::to_compile_result(pr);
    resp.has_result = true;
    if (spans) {
      obs::Span compile{"compile", "", ms_since(t_compile), {}};
      for (const auto& p : resp.result.timings.passes)
        compile.children.push_back({"pass:" + p.name, "", p.wall_ms, {}});
      spans->push_back(std::move(compile));
    }
    if (!pr.ok || !pr.program) {
      resp.status = Status::Error;
      resp.error = "compilation failed: " + pr.error;
      return resp;
    }
    auto t0 = clock::now();
    interp::Interpreter interp(*pr.program, req.interp);
    interp::RunResult rr = interp.run();
    double wall_ms = ms_since(t0);
    if (spans)
      spans->push_back(
          {"interp",
           req.interp.engine == interp::Engine::Tree ? "tree" : "bytecode",
           wall_ms,
           {}});
    resp.has_run = true;
    resp.run.ok = rr.ok;
    resp.run.stopped = rr.stopped;
    resp.run.stop_message = rr.stop_message;
    resp.run.error = rr.error;
    resp.run.output = rr.output;
    resp.run.statements = rr.statements_executed;
    resp.run.statements_parallel = rr.statements_in_parallel;
    resp.run.instructions = rr.instructions_executed;
    resp.run.wall_ms = wall_ms;
    if (!rr.ok) {
      resp.status = Status::Error;
      resp.error = "execution failed: " + rr.error;
    }
    if (opts_.telemetry) {
      service::ExecRecord er;
      er.app = job.app.name;
      er.config = driver::config_name(job.opts.config);
      er.engine =
          req.interp.engine == interp::Engine::Tree ? "tree" : "bytecode";
      er.threads = req.interp.num_threads;
      er.ok = rr.ok;
      er.wall_ms = wall_ms;
      er.bytecode_compile_ms = rr.bytecode_compile_ms;
      er.instructions = rr.instructions_executed;
      er.statements = rr.statements_executed;
      er.statements_parallel = rr.statements_in_parallel;
      opts_.telemetry->record_exec(er);
    }
  } catch (const std::exception& e) {
    resp.status = Status::Error;
    resp.error = std::string("internal error: ") + e.what();
  }
  return resp;
}

}  // namespace ap::net
