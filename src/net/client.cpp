#include "net/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include "net/binproto.h"

#include <cerrno>
#include <cstring>
#include <utility>

namespace ap::net {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_),
      binary_(other.binary_),
      reader_(std::move(other.reader_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = other.next_id_;
    binary_ = other.binary_;
    reader_ = std::move(other.reader_);
  }
  return *this;
}

bool Client::connect(const std::string& host, int port, std::string* err,
                     int recv_timeout_ms) {
  close();
  fd_ = connect_tcp(host, port, err);
  if (fd_ < 0) return false;
  if (recv_timeout_ms > 0) set_recv_timeout_ms(fd_, recv_timeout_ms);
  reader_ = FrameReader(kDefaultMaxFrame);
  return true;
}

bool Client::connect(int port, std::string* err, int recv_timeout_ms) {
  return connect("127.0.0.1", port, err, recv_timeout_ms);
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::send_raw(std::string_view bytes, std::string* err) {
  if (fd_ < 0) {
    if (err) *err = "not connected";
    return false;
  }
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (err) *err = std::string("send: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool Client::send_frame(std::string_view payload, std::string* err) {
  return send_raw(encode_frame(payload), err);
}

std::optional<std::string> Client::recv_frame(std::string* err) {
  if (fd_ < 0) {
    if (err) *err = "not connected";
    return std::nullopt;
  }
  char buf[64 * 1024];
  while (true) {
    if (auto payload = reader_.next()) return payload;
    if (reader_.error()) {
      if (err) *err = reader_.error_message();
      return std::nullopt;
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      reader_.feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      if (err) *err = "connection closed by server";
      return std::nullopt;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (err) *err = "receive timed out";
      return std::nullopt;
    }
    if (err) *err = std::string("recv: ") + std::strerror(errno);
    return std::nullopt;
  }
}

bool Client::submit(Request req, int64_t* id_out, std::string* err) {
  if (req.id == 0) req.id = next_id_++;
  if (id_out) *id_out = req.id;
  // Frame + payload are built in place in the reused send buffer: no
  // per-request allocation once its capacity has grown.
  sendbuf_.clear();
  size_t hdr = begin_frame(&sendbuf_);
  if (binary_)
    encode_request_binary(req, &sendbuf_);
  else
    sendbuf_ += request_to_json(req).dump();
  end_frame(&sendbuf_, hdr);
  return send_raw(sendbuf_, err);
}

bool Client::recv_any(Response* resp, std::string* err) {
  auto payload = recv_frame(err);
  if (!payload) return false;
  if (is_binary_frame(*payload)) {
    std::string decode_err;
    if (!decode_response_binary(*payload, resp, &decode_err)) {
      if (err) *err = "undecodable response: " + decode_err;
      return false;
    }
    return true;
  }
  std::string parse_err;
  auto doc = json::parse(*payload, &parse_err);
  if (!doc) {
    if (err) *err = "undecodable response: " + parse_err;
    return false;
  }
  std::string decode_err;
  if (!response_from_json(*doc, resp, &decode_err)) {
    if (err) *err = "undecodable response: " + decode_err;
    return false;
  }
  return true;
}

bool Client::call(Request req, Response* resp, std::string* err) {
  if (!submit(std::move(req), nullptr, err)) return false;
  return recv_any(resp, err);
}

bool Client::negotiate(std::string* err, HelloInfo* info) {
  HelloInfo h;
  if (!hello(&h, err)) return false;
  binary_ = h.binary;
  if (info) *info = h;
  return true;
}

bool Client::hello(HelloInfo* info, std::string* err) {
  Request req;
  req.type = RequestType::Hello;
  Response resp;
  if (!call(std::move(req), &resp, err)) return false;
  if (resp.status != Status::Ok || !resp.has_hello) {
    if (err)
      *err = "server did not answer hello: " +
             std::string(status_name(resp.status)) +
             (resp.error.empty() ? "" : " (" + resp.error + ")");
    return false;
  }
  if (info) *info = resp.hello;
  return true;
}

}  // namespace ap::net
