// A thread-safe, pipelined, multiplexed client connection.
//
// net::Client is single-threaded and (in call()) one-request-at-a-time.
// Channel wraps one Client so many threads can issue calls over ONE TCP
// connection with their requests pipelined: each call is submitted
// immediately (requests interleave back to back on the socket) and the
// calling thread then waits for the response frame carrying its id.
//
// Reading uses the leader/followers pattern: at most one waiting thread
// (the leader) blocks in recv at a time; every frame it drains is matched
// to the pending call by id and handed over, and followers wait on a
// condition variable. When the leader's own response arrives it hands
// leadership to any remaining waiter. There is no dedicated reader
// thread, so an idle channel costs nothing.
//
// Transport errors poison the stream (frames cannot be re-associated on
// a fresh connection), so every in-flight call fails together; the next
// call reconnects lazily and renegotiates the codec. The coordinator
// pools one Channel per worker — forwarding concurrency then comes from
// pipelining instead of connection-per-request.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "net/client.h"
#include "net/protocol.h"

namespace ap::net {

struct ChannelOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  // Bounds each blocking read while waiting for responses (0 = forever).
  // A timeout is a transport failure: all in-flight calls fail.
  int recv_timeout_ms = 0;
  // Hello-negotiate the binary codec on (re)connect. Off = speak JSON.
  bool negotiate = true;
};

class Channel {
 public:
  explicit Channel(ChannelOptions opts) : opts_(std::move(opts)) {}
  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Thread-safe. Connects lazily on first use (and after a failure).
  // False with *err on transport failure — every concurrent in-flight
  // call on this channel fails with the same transport error, since the
  // stream is unrecoverable. Protocol-level statuses are successes.
  // The request's id is REPLACED with a channel-local one (concurrent
  // callers' ids are not unique across connections); a caller that
  // forwards on someone else's behalf rewrites resp->id afterwards.
  bool call(Request req, Response* resp, std::string* err);

  // Drops the connection; in-flight calls fail, the next call redials.
  void reset();

  // Times the transport was (re)established / times it was established
  // after the first (telemetry).
  uint64_t connects() const;
  uint64_t reconnects() const;
  // Largest number of simultaneously in-flight calls seen (telemetry).
  uint64_t inflight_peak() const;
  // Whether the current connection negotiated the binary codec.
  bool binary() const;

 private:
  struct Waiter {
    Response resp;
    std::string err;
    bool done = false;
    bool failed = false;
  };

  // All three require mu_ held.
  bool ensure_connected_locked(std::string* err);
  void fail_all_locked(const std::string& why);
  void drain_as_leader(std::unique_lock<std::mutex>& lock);

  const ChannelOptions opts_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Client client_;
  bool reader_active_ = false;
  uint64_t connects_ = 0;
  uint64_t inflight_peak_ = 0;
  std::unordered_map<int64_t, Waiter*> pending_;
};

}  // namespace ap::net
