#include "net/binproto.h"

#include <bit>
#include <cstdint>
#include <cstring>

#include "support/json.h"

namespace ap::net {

namespace {

// Message kind byte (payload byte 1, after the magic).
constexpr unsigned char kKindRequest = 0x01;
constexpr unsigned char kKindResponse = 0x02;

// End-of-message tag, closing the top-level stream and every submessage.
constexpr unsigned char kEnd = 0x00;

// ---------------------------------------------------------------------------
// Primitive writers. All append-only; callers reuse the output buffer.

void put_u8(std::string* out, unsigned char b) {
  out->push_back(static_cast<char>(b));
}

void put_varint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void put_svarint(std::string* out, int64_t v) {
  // Zigzag: small magnitudes of either sign stay small on the wire.
  put_varint(out, (static_cast<uint64_t>(v) << 1) ^
                      static_cast<uint64_t>(v >> 63));
}

void put_str(std::string* out, std::string_view s) {
  put_varint(out, s.size());
  out->append(s.data(), s.size());
}

void put_double(std::string* out, double d) {
  uint64_t bits = std::bit_cast<uint64_t>(d);
  char buf[8];
  for (int i = 0; i < 8; ++i)
    buf[i] = static_cast<char>((bits >> (8 * i)) & 0xff);
  out->append(buf, 8);
}

void put_bool(std::string* out, bool b) { put_u8(out, b ? 1 : 0); }

// Tagged-field writers: tag byte, then the value.
void field_u8(std::string* out, unsigned char tag, unsigned char v) {
  put_u8(out, tag);
  put_u8(out, v);
}
void field_varint(std::string* out, unsigned char tag, uint64_t v) {
  put_u8(out, tag);
  put_varint(out, v);
}
void field_svarint(std::string* out, unsigned char tag, int64_t v) {
  put_u8(out, tag);
  put_svarint(out, v);
}
void field_str(std::string* out, unsigned char tag, std::string_view s) {
  put_u8(out, tag);
  put_str(out, s);
}
void field_double(std::string* out, unsigned char tag, double d) {
  put_u8(out, tag);
  put_double(out, d);
}
void field_bool(std::string* out, unsigned char tag, bool b) {
  put_u8(out, tag);
  put_bool(out, b);
}

// ---------------------------------------------------------------------------
// Bounds-checked reader. Never throws, never reads past `end`; the first
// failure latches (fail_) and every later read returns a zero value, so
// decode loops can defer the check to their exit.

class BinReader {
 public:
  BinReader(std::string_view data)
      : p_(data.data()), end_(data.data() + data.size()) {}

  bool failed() const { return fail_; }
  const std::string& error() const { return err_; }
  bool at_end() const { return p_ == end_; }

  unsigned char u8() {
    if (fail_ || p_ == end_) return set_fail("truncated byte");
    return static_cast<unsigned char>(*p_++);
  }

  uint64_t varint() {
    if (fail_) return 0;
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (p_ == end_) return set_fail("truncated varint");
      unsigned char b = static_cast<unsigned char>(*p_++);
      if (shift >= 63 && b > 1) return set_fail("varint overflow");
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) return v;
      shift += 7;
    }
  }

  int64_t svarint() {
    uint64_t z = varint();
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  std::string_view str() {
    uint64_t n = varint();
    if (fail_) return {};
    if (n > static_cast<uint64_t>(end_ - p_)) {
      set_fail("truncated string");
      return {};
    }
    std::string_view s(p_, static_cast<size_t>(n));
    p_ += n;
    return s;
  }

  double dbl() {
    if (fail_ || end_ - p_ < 8) {
      set_fail("truncated double");
      return 0;
    }
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i)
      bits |= static_cast<uint64_t>(static_cast<unsigned char>(p_[i]))
              << (8 * i);
    p_ += 8;
    return std::bit_cast<double>(bits);
  }

  bool boolean() { return u8() != 0; }

  uint64_t set_fail(const char* what) {
    if (!fail_) {
      fail_ = true;
      err_ = what;
    }
    return 0;
  }

 private:
  const char* p_;
  const char* end_;
  bool fail_ = false;
  std::string err_;
};

// ---------------------------------------------------------------------------
// Nested message codecs. Each mirrors the field set its JSON counterpart in
// protocol.cpp serializes — the round-trip-equality tests compare through
// the JSON dump, so any divergence here is caught immediately.

void enc_pipeline_options(std::string* out, const driver::PipelineOptions& o) {
  unsigned char config = 0;
  switch (o.config) {
    case driver::InlineConfig::None: config = 0; break;
    case driver::InlineConfig::Conventional: config = 1; break;
    case driver::InlineConfig::Annotation: config = 2; break;
  }
  field_u8(out, 1, config);
  field_svarint(out, 2, o.par.min_trip);
  field_bool(out, 3, o.par.normalize);
  field_bool(out, 4, o.par.mark_nested);
  field_bool(out, 5, o.par.use_banerjee);
  field_bool(out, 6, o.par.use_siv_refinement);
  field_bool(out, 7, o.par.collect_all_blockers);
  field_varint(out, 8, o.conv.max_stmts);
  field_svarint(out, 9, o.conv.max_callee_calls);
  field_bool(out, 10, o.conv.require_in_loop);
  field_bool(out, 11, o.conv.eliminate_dead_units);
  field_svarint(out, 12, o.conv.max_passes);
  field_bool(out, 13, o.annot.require_in_loop);
  field_bool(out, 14, o.reverse.tolerate_reordering);
  field_bool(out, 15, o.reverse.tolerate_forward_subst);
  field_bool(out, 16, o.reverse.tolerate_literals);
  field_bool(out, 17, o.reverse.fallback_to_hints);
  if (!o.stop_after.empty()) field_str(out, 18, o.stop_after);
  if (!o.print_after.empty()) field_str(out, 19, o.print_after);
  put_u8(out, kEnd);
}

bool dec_pipeline_options(BinReader& r, driver::PipelineOptions* out) {
  driver::PipelineOptions o;
  while (true) {
    unsigned char tag = r.u8();
    if (r.failed()) return false;
    if (tag == kEnd) break;
    switch (tag) {
      case 1: {
        unsigned char c = r.u8();
        if (c > 2) {
          r.set_fail("bad inline config");
          return false;
        }
        o.config = c == 0   ? driver::InlineConfig::None
                   : c == 1 ? driver::InlineConfig::Conventional
                            : driver::InlineConfig::Annotation;
        break;
      }
      case 2: o.par.min_trip = r.svarint(); break;
      case 3: o.par.normalize = r.boolean(); break;
      case 4: o.par.mark_nested = r.boolean(); break;
      case 5: o.par.use_banerjee = r.boolean(); break;
      case 6: o.par.use_siv_refinement = r.boolean(); break;
      case 7: o.par.collect_all_blockers = r.boolean(); break;
      case 8: o.conv.max_stmts = static_cast<size_t>(r.varint()); break;
      case 9:
        o.conv.max_callee_calls = static_cast<int>(r.svarint());
        break;
      case 10: o.conv.require_in_loop = r.boolean(); break;
      case 11: o.conv.eliminate_dead_units = r.boolean(); break;
      case 12: o.conv.max_passes = static_cast<int>(r.svarint()); break;
      case 13: o.annot.require_in_loop = r.boolean(); break;
      case 14: o.reverse.tolerate_reordering = r.boolean(); break;
      case 15: o.reverse.tolerate_forward_subst = r.boolean(); break;
      case 16: o.reverse.tolerate_literals = r.boolean(); break;
      case 17: o.reverse.fallback_to_hints = r.boolean(); break;
      case 18: o.stop_after = std::string(r.str()); break;
      case 19: o.print_after = std::string(r.str()); break;
      default:
        r.set_fail("unknown pipeline-options tag");
        return false;
    }
    if (r.failed()) return false;
  }
  *out = o;
  return true;
}

void enc_interp_options(std::string* out, const interp::InterpOptions& o) {
  field_u8(out, 1, o.engine == interp::Engine::Tree ? 0 : 1);
  field_svarint(out, 2, o.num_threads);
  field_bool(out, 3, o.enable_parallel);
  field_svarint(out, 4, o.max_steps);
  field_bool(out, 5, o.check_bounds);
  put_u8(out, kEnd);
}

bool dec_interp_options(BinReader& r, interp::InterpOptions* out) {
  interp::InterpOptions o;
  while (true) {
    unsigned char tag = r.u8();
    if (r.failed()) return false;
    if (tag == kEnd) break;
    switch (tag) {
      case 1: {
        unsigned char e = r.u8();
        if (e > 1) {
          r.set_fail("bad interp engine");
          return false;
        }
        o.engine = e == 0 ? interp::Engine::Tree : interp::Engine::Bytecode;
        break;
      }
      case 2: o.num_threads = static_cast<int>(r.svarint()); break;
      case 3: o.enable_parallel = r.boolean(); break;
      case 4: o.max_steps = r.svarint(); break;
      case 5: o.check_bounds = r.boolean(); break;
      default:
        r.set_fail("unknown interp-options tag");
        return false;
    }
    if (r.failed()) return false;
  }
  // Same clamp the JSON decoder applies.
  if (o.num_threads < 1) o.num_threads = 1;
  *out = o;
  return true;
}

void enc_worker_info(std::string* out, const WorkerInfo& w) {
  field_str(out, 1, w.id);
  field_str(out, 2, w.host);
  field_svarint(out, 3, w.port);
  put_u8(out, kEnd);
}

bool dec_worker_info(BinReader& r, WorkerInfo* out) {
  WorkerInfo w;
  while (true) {
    unsigned char tag = r.u8();
    if (r.failed()) return false;
    if (tag == kEnd) break;
    switch (tag) {
      case 1: w.id = std::string(r.str()); break;
      case 2: w.host = std::string(r.str()); break;
      case 3: w.port = static_cast<int>(r.svarint()); break;
      default:
        r.set_fail("unknown worker-info tag");
        return false;
    }
    if (r.failed()) return false;
  }
  *out = w;
  return true;
}

void enc_worker_load(std::string* out, const WorkerLoad& l) {
  field_svarint(out, 1, l.queue_depth);
  field_svarint(out, 2, l.running);
  field_varint(out, 3, l.cache_entries);
  field_varint(out, 4, l.cache_hits);
  field_varint(out, 5, l.cache_misses);
  field_varint(out, 6, l.peer_hits);
  if (!l.hist.empty()) field_str(out, 7, l.hist);
  put_u8(out, kEnd);
}

bool dec_worker_load(BinReader& r, WorkerLoad* out) {
  WorkerLoad l;
  while (true) {
    unsigned char tag = r.u8();
    if (r.failed()) return false;
    if (tag == kEnd) break;
    switch (tag) {
      case 1: l.queue_depth = r.svarint(); break;
      case 2: l.running = r.svarint(); break;
      case 3: l.cache_entries = r.varint(); break;
      case 4: l.cache_hits = r.varint(); break;
      case 5: l.cache_misses = r.varint(); break;
      case 6: l.peer_hits = r.varint(); break;
      case 7: l.hist = std::string(r.str()); break;
      default:
        r.set_fail("unknown worker-load tag");
        return false;
    }
    if (r.failed()) return false;
  }
  *out = l;
  return true;
}

void enc_hello(std::string* out, const HelloInfo& h) {
  field_svarint(out, 1, h.min_version);
  field_svarint(out, 2, h.max_version);
  field_str(out, 3, h.role);
  field_bool(out, 4, h.draining);
  field_bool(out, 5, h.binary);
  put_u8(out, kEnd);
}

bool dec_hello(BinReader& r, HelloInfo* out) {
  HelloInfo h;
  while (true) {
    unsigned char tag = r.u8();
    if (r.failed()) return false;
    if (tag == kEnd) break;
    switch (tag) {
      case 1: h.min_version = static_cast<int>(r.svarint()); break;
      case 2: h.max_version = static_cast<int>(r.svarint()); break;
      case 3: h.role = std::string(r.str()); break;
      case 4: h.draining = r.boolean(); break;
      case 5: h.binary = r.boolean(); break;
      default:
        r.set_fail("unknown hello tag");
        return false;
    }
    if (r.failed()) return false;
  }
  *out = h;
  return true;
}

void enc_compile_result(std::string* out, const service::CompileResult& c) {
  field_bool(out, 1, c.ok);
  if (!c.error.empty()) field_str(out, 2, c.error);
  field_bool(out, 3, c.cache_hit);
  put_u8(out, 4);
  put_varint(out, c.parallel_loops.size());
  for (int64_t id : c.parallel_loops) put_svarint(out, id);
  field_varint(out, 5, c.code_lines);
  field_varint(out, 6, c.dep_tests);
  field_varint(out, 7, c.dep_tests_unique);
  field_double(out, 8, c.timings.total_ms);
  put_u8(out, 9);
  put_varint(out, c.timings.passes.size());
  for (const auto& p : c.timings.passes) {
    field_str(out, 1, p.name);
    field_double(out, 2, p.wall_ms);
    field_svarint(out, 3, p.units);
    field_svarint(out, 4, p.diagnostics);
    // v6 per-boundary counters, emitted only when the pass snapshotted
    // (mirrors the JSON codec's emit-when-nonzero rule).
    if (p.unit_hits + p.unit_misses > 0) {
      field_svarint(out, 5, p.unit_hits);
      field_svarint(out, 6, p.unit_misses);
      field_svarint(out, 7, p.unit_disk_hits);
      field_svarint(out, 8, p.unit_peer_hits);
      field_svarint(out, 9, p.unit_invalidated);
    }
    put_u8(out, kEnd);
  }
  field_bool(out, 10, c.stopped_early);
  field_str(out, 11, c.program_text);
  if (!c.print_dump.empty()) field_str(out, 12, c.print_dump);
  field_bool(out, 13, c.peer_hit);
  field_varint(out, 14, c.unit_hits);
  field_varint(out, 15, c.unit_misses);
  field_varint(out, 16, c.unit_invalidated);
  field_varint(out, 17, c.unit_disk_hits);
  field_varint(out, 18, c.unit_peer_hits);
  put_u8(out, kEnd);
}

bool dec_compile_result(BinReader& r, service::CompileResult* out) {
  service::CompileResult c;
  while (true) {
    unsigned char tag = r.u8();
    if (r.failed()) return false;
    if (tag == kEnd) break;
    switch (tag) {
      case 1: c.ok = r.boolean(); break;
      case 2: c.error = std::string(r.str()); break;
      case 3: c.cache_hit = r.boolean(); break;
      case 4: {
        uint64_t n = r.varint();
        for (uint64_t i = 0; i < n && !r.failed(); ++i)
          c.parallel_loops.insert(r.svarint());
        break;
      }
      case 5: c.code_lines = static_cast<size_t>(r.varint()); break;
      case 6: c.dep_tests = static_cast<size_t>(r.varint()); break;
      case 7: c.dep_tests_unique = static_cast<size_t>(r.varint()); break;
      case 8: c.timings.total_ms = r.dbl(); break;
      case 9: {
        uint64_t n = r.varint();
        for (uint64_t i = 0; i < n && !r.failed(); ++i) {
          pm::PassRecord p;
          while (true) {
            unsigned char ptag = r.u8();
            if (r.failed()) return false;
            if (ptag == kEnd) break;
            switch (ptag) {
              case 1: p.name = std::string(r.str()); break;
              case 2: p.wall_ms = r.dbl(); break;
              case 3: p.units = static_cast<int>(r.svarint()); break;
              case 4: p.diagnostics = static_cast<int>(r.svarint()); break;
              case 5: p.unit_hits = static_cast<int>(r.svarint()); break;
              case 6: p.unit_misses = static_cast<int>(r.svarint()); break;
              case 7:
                p.unit_disk_hits = static_cast<int>(r.svarint());
                break;
              case 8:
                p.unit_peer_hits = static_cast<int>(r.svarint());
                break;
              case 9:
                p.unit_invalidated = static_cast<int>(r.svarint());
                break;
              default:
                r.set_fail("unknown pass-record tag");
                return false;
            }
            if (r.failed()) return false;
          }
          c.timings.passes.push_back(std::move(p));
        }
        break;
      }
      case 10: c.stopped_early = r.boolean(); break;
      case 11: c.program_text = std::string(r.str()); break;
      case 12: c.print_dump = std::string(r.str()); break;
      case 13: c.peer_hit = r.boolean(); break;
      case 14: c.unit_hits = static_cast<size_t>(r.varint()); break;
      case 15: c.unit_misses = static_cast<size_t>(r.varint()); break;
      case 16: c.unit_invalidated = static_cast<size_t>(r.varint()); break;
      case 17: c.unit_disk_hits = static_cast<size_t>(r.varint()); break;
      case 18: c.unit_peer_hits = static_cast<size_t>(r.varint()); break;
      default:
        r.set_fail("unknown compile-result tag");
        return false;
    }
    if (r.failed()) return false;
  }
  *out = std::move(c);
  return true;
}

void enc_run_payload(std::string* out, const RunPayload& p) {
  field_bool(out, 1, p.ok);
  field_bool(out, 2, p.stopped);
  if (!p.stop_message.empty()) field_str(out, 3, p.stop_message);
  if (!p.error.empty()) field_str(out, 4, p.error);
  field_str(out, 5, p.output);
  field_varint(out, 6, p.statements);
  field_varint(out, 7, p.statements_parallel);
  field_varint(out, 8, p.instructions);
  field_double(out, 9, p.wall_ms);
  put_u8(out, kEnd);
}

bool dec_run_payload(BinReader& r, RunPayload* out) {
  RunPayload p;
  while (true) {
    unsigned char tag = r.u8();
    if (r.failed()) return false;
    if (tag == kEnd) break;
    switch (tag) {
      case 1: p.ok = r.boolean(); break;
      case 2: p.stopped = r.boolean(); break;
      case 3: p.stop_message = std::string(r.str()); break;
      case 4: p.error = std::string(r.str()); break;
      case 5: p.output = std::string(r.str()); break;
      case 6: p.statements = r.varint(); break;
      case 7: p.statements_parallel = r.varint(); break;
      case 8: p.instructions = r.varint(); break;
      case 9: p.wall_ms = r.dbl(); break;
      default:
        r.set_fail("unknown run-payload tag");
        return false;
    }
    if (r.failed()) return false;
  }
  *out = std::move(p);
  return true;
}

void enc_batch_item(std::string* out, const BatchItem& b) {
  if (!b.name.empty()) field_str(out, 1, b.name);
  field_str(out, 2, b.source);
  if (!b.annotations.empty()) field_str(out, 3, b.annotations);
  put_u8(out, 4);
  enc_pipeline_options(out, b.options);
  put_u8(out, kEnd);
}

bool dec_batch_item(BinReader& r, BatchItem* out) {
  BatchItem b;
  while (true) {
    unsigned char tag = r.u8();
    if (r.failed()) return false;
    if (tag == kEnd) break;
    switch (tag) {
      case 1: b.name = std::string(r.str()); break;
      case 2: b.source = std::string(r.str()); break;
      case 3: b.annotations = std::string(r.str()); break;
      case 4:
        if (!dec_pipeline_options(r, &b.options)) return false;
        break;
      default:
        r.set_fail("unknown batch-item tag");
        return false;
    }
    if (r.failed()) return false;
  }
  *out = std::move(b);
  return true;
}

// Same payload-shape predicates the JSON codec uses.
bool carries_compile_payload(RequestType t, RequestType inner) {
  if (t == RequestType::Forward)
    return inner == RequestType::Compile || inner == RequestType::Run;
  return t == RequestType::Compile || t == RequestType::Run;
}

bool carries_batch_payload(RequestType t, RequestType inner) {
  return t == RequestType::CompileBatch ||
         (t == RequestType::Forward && inner == RequestType::CompileBatch);
}

bool fail(std::string* err, BinReader& r, const char* fallback) {
  if (err) *err = r.failed() ? r.error() : fallback;
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Request

void encode_request_binary(const Request& r, std::string* out) {
  put_u8(out, kBinaryMagic);
  put_u8(out, kKindRequest);
  field_u8(out, 1, static_cast<unsigned char>(r.type));
  field_svarint(out, 2, r.id);
  field_svarint(out, 3, r.version);
  if (carries_compile_payload(r.type, r.inner)) {
    if (!r.name.empty()) field_str(out, 4, r.name);
    field_str(out, 5, r.source);
    if (!r.annotations.empty()) field_str(out, 6, r.annotations);
    put_u8(out, 7);
    enc_pipeline_options(out, r.options);
  }
  bool wants_interp =
      r.type == RequestType::Run ||
      (r.type == RequestType::Forward && r.inner == RequestType::Run);
  if (wants_interp) {
    put_u8(out, 8);
    enc_interp_options(out, r.interp);
  }
  if ((carries_compile_payload(r.type, r.inner) ||
       carries_batch_payload(r.type, r.inner)) &&
      r.deadline_ms > 0)
    field_svarint(out, 9, r.deadline_ms);
  switch (r.type) {
    case RequestType::Register:
      put_u8(out, 10);
      enc_worker_info(out, r.worker);
      break;
    case RequestType::Heartbeat:
      put_u8(out, 10);
      enc_worker_info(out, r.worker);
      put_u8(out, 11);
      enc_worker_load(out, r.load);
      if (r.leaving) field_bool(out, 12, true);
      break;
    case RequestType::CacheProbe:
      field_str(out, 13, r.key);
      break;
    case RequestType::CacheFill:
      field_str(out, 13, r.key);
      field_str(out, 14, r.payload);
      break;
    case RequestType::UnitProbe:
      field_str(out, 13, r.key);
      break;
    case RequestType::UnitFill:
      field_str(out, 13, r.key);
      field_str(out, 14, r.payload);
      field_str(out, 20, r.boundary);
      break;
    case RequestType::Forward:
      field_u8(out, 15, static_cast<unsigned char>(r.inner));
      field_svarint(out, 16, r.attempt);
      break;
    default:
      break;
  }
  if (carries_batch_payload(r.type, r.inner)) {
    put_u8(out, 17);
    put_varint(out, r.batch.size());
    for (const auto& b : r.batch) enc_batch_item(out, b);
  }
  // v5 trace context, emitted only when set (unknown tags are decode
  // errors, so pre-v5 peers never see these).
  if (r.trace) field_bool(out, 18, true);
  if (r.trace_id) field_varint(out, 19, r.trace_id);
  put_u8(out, kEnd);
}

std::string encode_request_binary(const Request& r) {
  std::string out;
  encode_request_binary(r, &out);
  return out;
}

bool decode_request_binary(std::string_view payload, Request* out,
                           std::string* err) {
  BinReader r(payload);
  if (r.u8() != kBinaryMagic || r.u8() != kKindRequest || r.failed()) {
    if (err) *err = "not a binary request frame";
    return false;
  }
  Request q;
  while (true) {
    unsigned char tag = r.u8();
    if (r.failed()) return fail(err, r, "truncated request");
    if (tag == kEnd) break;
    switch (tag) {
      case 1: {
        unsigned char t = r.u8();
        if (t > static_cast<unsigned char>(RequestType::UnitFill)) {
          if (err) *err = "unknown request type";
          return false;
        }
        q.type = static_cast<RequestType>(t);
        break;
      }
      case 2: q.id = r.svarint(); break;
      case 3: q.version = static_cast<int>(r.svarint()); break;
      case 4: q.name = std::string(r.str()); break;
      case 5: q.source = std::string(r.str()); break;
      case 6: q.annotations = std::string(r.str()); break;
      case 7:
        if (!dec_pipeline_options(r, &q.options))
          return fail(err, r, "bad options");
        break;
      case 8:
        if (!dec_interp_options(r, &q.interp))
          return fail(err, r, "bad interp options");
        break;
      case 9: q.deadline_ms = r.svarint(); break;
      case 10:
        if (!dec_worker_info(r, &q.worker))
          return fail(err, r, "bad worker info");
        break;
      case 11:
        if (!dec_worker_load(r, &q.load))
          return fail(err, r, "bad worker load");
        break;
      case 12: q.leaving = r.boolean(); break;
      case 13: q.key = std::string(r.str()); break;
      case 14: q.payload = std::string(r.str()); break;
      case 15: {
        unsigned char t = r.u8();
        if (t > static_cast<unsigned char>(RequestType::Stats)) {
          if (err) *err = "unknown forward inner type";
          return false;
        }
        q.inner = static_cast<RequestType>(t);
        break;
      }
      case 16: q.attempt = static_cast<int>(r.svarint()); break;
      case 17: {
        uint64_t n = r.varint();
        if (r.failed()) return fail(err, r, "bad batch");
        for (uint64_t i = 0; i < n; ++i) {
          BatchItem b;
          if (!dec_batch_item(r, &b)) return fail(err, r, "bad batch item");
          q.batch.push_back(std::move(b));
        }
        break;
      }
      case 18: q.trace = r.boolean(); break;
      case 19: q.trace_id = r.varint(); break;
      case 20: q.boundary = std::string(r.str()); break;
      default:
        if (err) *err = "unknown request tag";
        return false;
    }
    if (r.failed()) return fail(err, r, "truncated request");
  }
  if (!r.at_end()) {
    if (err) *err = "trailing bytes after request";
    return false;
  }
  // Same semantic validation the JSON decoder enforces. The version range
  // is deliberately NOT checked here: the server answers an out-of-range
  // claim with a structured `unsupported_version` (connection stays open),
  // which requires the decode itself to succeed.
  if (q.type == RequestType::Forward && q.inner != RequestType::Compile &&
      q.inner != RequestType::Run && q.inner != RequestType::CompileBatch) {
    if (err)
      *err = "forward requires inner type compile, run, or compile_batch";
    return false;
  }
  if ((q.type == RequestType::Register || q.type == RequestType::Heartbeat) &&
      q.worker.id.empty()) {
    if (err) *err = "worker id must be non-empty";
    return false;
  }
  if (q.type == RequestType::CacheProbe || q.type == RequestType::CacheFill) {
    uint64_t parsed;
    if (!parse_key(q.key, &parsed)) {
      if (err) *err = "cache_probe/cache_fill requires a hex \"key\"";
      return false;
    }
  }
  if (q.type == RequestType::UnitProbe || q.type == RequestType::UnitFill) {
    uint64_t parsed;
    if (!parse_key(q.key, &parsed)) {
      if (err) *err = "unit_probe/unit_fill requires a hex \"key\"";
      return false;
    }
  }
  *out = std::move(q);
  return true;
}

// ---------------------------------------------------------------------------
// Response

void encode_response_binary(const Response& r, std::string* out) {
  put_u8(out, kBinaryMagic);
  put_u8(out, kKindResponse);
  field_svarint(out, 1, r.id);
  field_u8(out, 2, static_cast<unsigned char>(r.status));
  if (!r.error.empty()) field_str(out, 3, r.error);
  if (r.has_result) {
    put_u8(out, 4);
    enc_compile_result(out, r.result);
  }
  if (r.has_run) {
    put_u8(out, 5);
    enc_run_payload(out, r.run);
  }
  // Metrics responses are rare (operator polls) and schemaless, so the
  // object travels as embedded JSON text rather than gaining TLV tags.
  if (r.metrics.is_object()) field_str(out, 6, r.metrics.dump());
  // Span trees follow the same reasoning (per traced request, rare).
  if (r.trace.is_object()) field_str(out, 12, r.trace.dump());
  if (r.has_hello) {
    put_u8(out, 7);
    enc_hello(out, r.hello);
  }
  if (r.found) field_bool(out, 8, true);
  if (!r.payload.empty()) field_str(out, 9, r.payload);
  if (r.has_peers) {
    put_u8(out, 10);
    put_varint(out, r.peers.size());
    for (const auto& p : r.peers) enc_worker_info(out, p);
  }
  if (r.has_batch) {
    put_u8(out, 11);
    put_varint(out, r.batch.size());
    for (const auto& c : r.batch) enc_compile_result(out, c);
  }
  put_u8(out, kEnd);
}

std::string encode_response_binary(const Response& r) {
  std::string out;
  encode_response_binary(r, &out);
  return out;
}

bool decode_response_binary(std::string_view payload, Response* out,
                            std::string* err) {
  BinReader r(payload);
  if (r.u8() != kBinaryMagic || r.u8() != kKindResponse || r.failed()) {
    if (err) *err = "not a binary response frame";
    return false;
  }
  Response q;
  while (true) {
    unsigned char tag = r.u8();
    if (r.failed()) return fail(err, r, "truncated response");
    if (tag == kEnd) break;
    switch (tag) {
      case 1: q.id = r.svarint(); break;
      case 2: {
        unsigned char s = r.u8();
        if (s > static_cast<unsigned char>(Status::ProtocolError)) {
          if (err) *err = "unknown response status";
          return false;
        }
        q.status = static_cast<Status>(s);
        break;
      }
      case 3: q.error = std::string(r.str()); break;
      case 4:
        q.has_result = true;
        if (!dec_compile_result(r, &q.result))
          return fail(err, r, "bad result");
        break;
      case 5:
        q.has_run = true;
        if (!dec_run_payload(r, &q.run)) return fail(err, r, "bad run");
        break;
      case 6: {
        std::string_view text = r.str();
        if (r.failed()) return fail(err, r, "bad metrics");
        std::string perr;
        std::optional<json::Value> parsed = json::parse(text, &perr);
        if (!parsed) {
          if (err) *err = "bad metrics JSON: " + perr;
          return false;
        }
        q.metrics = std::move(*parsed);
        break;
      }
      case 7:
        q.has_hello = true;
        if (!dec_hello(r, &q.hello)) return fail(err, r, "bad hello");
        break;
      case 8: q.found = r.boolean(); break;
      case 9: q.payload = std::string(r.str()); break;
      case 10: {
        q.has_peers = true;
        uint64_t n = r.varint();
        if (r.failed()) return fail(err, r, "bad peers");
        for (uint64_t i = 0; i < n; ++i) {
          WorkerInfo w;
          if (!dec_worker_info(r, &w)) return fail(err, r, "bad peer");
          q.peers.push_back(std::move(w));
        }
        break;
      }
      case 11: {
        q.has_batch = true;
        uint64_t n = r.varint();
        if (r.failed()) return fail(err, r, "bad batch");
        for (uint64_t i = 0; i < n; ++i) {
          service::CompileResult c;
          if (!dec_compile_result(r, &c))
            return fail(err, r, "bad batch result");
          q.batch.push_back(std::move(c));
        }
        break;
      }
      case 12: {
        std::string_view text = r.str();
        if (r.failed()) return fail(err, r, "bad trace");
        std::string perr;
        std::optional<json::Value> parsed = json::parse(text, &perr);
        if (!parsed) {
          if (err) *err = "bad trace JSON: " + perr;
          return false;
        }
        q.trace = std::move(*parsed);
        break;
      }
      default:
        if (err) *err = "unknown response tag";
        return false;
    }
    if (r.failed()) return fail(err, r, "truncated response");
  }
  if (!r.at_end()) {
    if (err) *err = "trailing bytes after response";
    return false;
  }
  *out = std::move(q);
  return true;
}

}  // namespace ap::net
