// Wire framing and socket plumbing for the serving layer.
//
// Every message — request or response — travels as one frame:
//
//   +----------------------------+----------------------+
//   | 4-byte big-endian length N | N bytes JSON payload |
//   +----------------------------+----------------------+
//
// The length counts payload bytes only. The payload is one JSON document
// (v1–v3, and v4 peers that stayed on JSON) or one binary TLV message
// (v4, first byte 0xB4 — see binproto.h); the codec is dispatched per
// frame by that first byte. A length prefix larger than the receiver's
// configured maximum is a protocol error: the receiver answers with a
// `protocol_error` response and closes the connection (it cannot
// resynchronize inside an untrusted stream). FrameReader is the
// incremental decoder used by both sides; it consumes bytes as they
// arrive and yields complete payloads, so it works unchanged over
// nonblocking sockets that deliver frames in arbitrary fragments. The
// buffer is reused across frames: consumption advances an offset instead
// of erasing the front, and the allocation is recycled once drained, so a
// busy connection settles into zero steady-state allocation in the reader
// (`next_view` additionally avoids the payload copy-out).
//
// The socket helpers below are the thin POSIX layer the server and client
// share: loopback TCP listen/connect and nonblocking mode. Everything
// returns -1 and fills *err instead of throwing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ap::net {

// Default per-frame payload ceiling (largest suite source is ~10 KB; this
// leaves three orders of magnitude of headroom for real programs while
// bounding per-connection buffering).
inline constexpr size_t kDefaultMaxFrame = 16 * 1024 * 1024;

// Prepends the 4-byte big-endian length prefix.
std::string encode_frame(std::string_view payload);

// Allocation-free framing for senders that build payloads in place:
// begin_frame appends a 4-byte length placeholder to *out and returns its
// offset; the caller then appends the payload bytes directly, and
// end_frame patches the placeholder with everything appended since. Lets
// the server encode a response straight into a connection's reusable
// output buffer with no intermediate payload string.
size_t begin_frame(std::string* out);
void end_frame(std::string* out, size_t header_pos);

// Appends prefix + payload to *out (the reusable-buffer form of
// encode_frame).
void append_frame(std::string* out, std::string_view payload);

class FrameReader {
 public:
  explicit FrameReader(size_t max_frame = kDefaultMaxFrame)
      : max_frame_(max_frame) {}

  // Append raw bytes received from the socket.
  void feed(const char* data, size_t n);

  // The next complete payload, or nullopt when more bytes are needed.
  // After an oversized length prefix, enters a sticky error state:
  // next() always returns nullopt and error() is true.
  std::optional<std::string> next();

  // Zero-copy variant: a view into the internal buffer, valid only until
  // the next feed()/next()/next_view() call. The server hot path decodes
  // straight from this view.
  std::optional<std::string_view> next_view();

  bool error() const { return error_; }
  const std::string& error_message() const { return error_msg_; }

  // Bytes currently buffered and not yet consumed (partial frame).
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix; reclaimed in feed(), never erased here
  size_t max_frame_;
  bool error_ = false;
  std::string error_msg_;
};

// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral
// port). Returns the listening fd, or -1 with *err set. *bound_port
// receives the actual port.
int listen_tcp(int port, int* bound_port, std::string* err);

// Blocking connect to host:port. `host` is an IPv4 literal or a hostname
// (resolved via getaddrinfo). Returns the fd, or -1 with *err set.
int connect_tcp(const std::string& host, int port, std::string* err);

bool set_nonblocking(int fd);

// Sets SO_RCVTIMEO so blocking reads fail instead of hanging forever.
bool set_recv_timeout_ms(int fd, int timeout_ms);

}  // namespace ap::net
