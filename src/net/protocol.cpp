#include "net/protocol.h"

#include <cstdio>

namespace ap::net {

namespace {

// Reads a field with a kind check; absent fields keep the default.
bool get_bool(const json::Value& obj, std::string_view key, bool def) {
  const json::Value* v = obj.find(key);
  return v ? v->as_bool(def) : def;
}

int64_t get_int(const json::Value& obj, std::string_view key, int64_t def) {
  const json::Value* v = obj.find(key);
  return v && v->is_number() ? v->as_int(def) : def;
}

std::string get_string(const json::Value& obj, std::string_view key) {
  const json::Value* v = obj.find(key);
  return v ? v->as_string() : std::string();
}

}  // namespace

const char* request_type_name(RequestType t) {
  switch (t) {
    case RequestType::Compile: return "compile";
    case RequestType::Run: return "run";
    case RequestType::Metrics: return "metrics";
    case RequestType::Ping: return "ping";
    case RequestType::Hello: return "hello";
    case RequestType::Register: return "register";
    case RequestType::Heartbeat: return "heartbeat";
    case RequestType::CacheProbe: return "cache_probe";
    case RequestType::CacheFill: return "cache_fill";
    case RequestType::Forward: return "forward";
    case RequestType::CompileBatch: return "compile_batch";
    case RequestType::Stats: return "stats";
    case RequestType::UnitProbe: return "unit_probe";
    case RequestType::UnitFill: return "unit_fill";
  }
  return "?";
}

bool request_type_requires_v3(RequestType t) {
  switch (t) {
    case RequestType::Register:
    case RequestType::Heartbeat:
    case RequestType::CacheProbe:
    case RequestType::CacheFill:
    case RequestType::Forward:
      return true;
    default:
      return false;
  }
}

bool request_type_requires_v4(RequestType t) {
  return t == RequestType::CompileBatch;
}

bool request_type_requires_v5(RequestType t) {
  return t == RequestType::Stats;
}

bool request_type_requires_v6(RequestType t) {
  return t == RequestType::UnitProbe || t == RequestType::UnitFill;
}

const char* status_name(Status s) {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::Error: return "error";
    case Status::Overloaded: return "overloaded";
    case Status::DeadlineExceeded: return "deadline_exceeded";
    case Status::UnsupportedVersion: return "unsupported_version";
    case Status::WorkerLost: return "worker_lost";
    case Status::ProtocolError: return "protocol_error";
  }
  return "?";
}

std::string format_key(uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

bool parse_key(std::string_view hex, uint64_t* out) {
  if (hex.empty() || hex.size() > 16) return false;
  uint64_t v = 0;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return false;
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  *out = v;
  return true;
}

json::Value pipeline_options_to_json(const driver::PipelineOptions& o) {
  json::Value par = json::Value::object();
  par.set("min_trip", o.par.min_trip)
      .set("normalize", o.par.normalize)
      .set("mark_nested", o.par.mark_nested)
      .set("use_banerjee", o.par.use_banerjee)
      .set("use_siv_refinement", o.par.use_siv_refinement)
      .set("collect_all_blockers", o.par.collect_all_blockers);
  json::Value conv = json::Value::object();
  conv.set("max_stmts", static_cast<int64_t>(o.conv.max_stmts))
      .set("max_callee_calls", o.conv.max_callee_calls)
      .set("require_in_loop", o.conv.require_in_loop)
      .set("eliminate_dead_units", o.conv.eliminate_dead_units)
      .set("max_passes", o.conv.max_passes);
  json::Value annot = json::Value::object();
  annot.set("require_in_loop", o.annot.require_in_loop);
  json::Value reverse = json::Value::object();
  reverse.set("tolerate_reordering", o.reverse.tolerate_reordering)
      .set("tolerate_forward_subst", o.reverse.tolerate_forward_subst)
      .set("tolerate_literals", o.reverse.tolerate_literals)
      .set("fallback_to_hints", o.reverse.fallback_to_hints);

  const char* config = "none";
  switch (o.config) {
    case driver::InlineConfig::None: config = "none"; break;
    case driver::InlineConfig::Conventional: config = "conv"; break;
    case driver::InlineConfig::Annotation: config = "annot"; break;
  }
  json::Value out = json::Value::object();
  out.set("config", config)
      .set("par", std::move(par))
      .set("conv", std::move(conv))
      .set("annot", std::move(annot))
      .set("reverse", std::move(reverse));
  // Pass-manager controls travel only when set: absent fields decode to the
  // defaults, so v2 payloads without them stay byte-identical to v1 bodies.
  if (!o.stop_after.empty()) out.set("stop_after", o.stop_after);
  if (!o.print_after.empty()) out.set("print_after", o.print_after);
  return out;
}

bool pipeline_options_from_json(const json::Value& v,
                                driver::PipelineOptions* out,
                                std::string* err) {
  driver::PipelineOptions o;  // field defaults are the wire defaults
  if (!v.is_object()) {
    if (err) *err = "options must be an object";
    return false;
  }
  std::string config = get_string(v, "config");
  if (config.empty() || config == "none") {
    o.config = driver::InlineConfig::None;
  } else if (config == "conv") {
    o.config = driver::InlineConfig::Conventional;
  } else if (config == "annot") {
    o.config = driver::InlineConfig::Annotation;
  } else {
    if (err) *err = "unknown config: " + config;
    return false;
  }
  if (const json::Value* par = v.find("par")) {
    o.par.min_trip = get_int(*par, "min_trip", o.par.min_trip);
    o.par.normalize = get_bool(*par, "normalize", o.par.normalize);
    o.par.mark_nested = get_bool(*par, "mark_nested", o.par.mark_nested);
    o.par.use_banerjee = get_bool(*par, "use_banerjee", o.par.use_banerjee);
    o.par.use_siv_refinement =
        get_bool(*par, "use_siv_refinement", o.par.use_siv_refinement);
    o.par.collect_all_blockers =
        get_bool(*par, "collect_all_blockers", o.par.collect_all_blockers);
  }
  if (const json::Value* conv = v.find("conv")) {
    o.conv.max_stmts = static_cast<size_t>(
        get_int(*conv, "max_stmts", static_cast<int64_t>(o.conv.max_stmts)));
    o.conv.max_callee_calls = static_cast<int>(
        get_int(*conv, "max_callee_calls", o.conv.max_callee_calls));
    o.conv.require_in_loop =
        get_bool(*conv, "require_in_loop", o.conv.require_in_loop);
    o.conv.eliminate_dead_units =
        get_bool(*conv, "eliminate_dead_units", o.conv.eliminate_dead_units);
    o.conv.max_passes =
        static_cast<int>(get_int(*conv, "max_passes", o.conv.max_passes));
  }
  if (const json::Value* annot = v.find("annot")) {
    o.annot.require_in_loop =
        get_bool(*annot, "require_in_loop", o.annot.require_in_loop);
  }
  if (const json::Value* reverse = v.find("reverse")) {
    o.reverse.tolerate_reordering =
        get_bool(*reverse, "tolerate_reordering", o.reverse.tolerate_reordering);
    o.reverse.tolerate_forward_subst = get_bool(
        *reverse, "tolerate_forward_subst", o.reverse.tolerate_forward_subst);
    o.reverse.tolerate_literals =
        get_bool(*reverse, "tolerate_literals", o.reverse.tolerate_literals);
    o.reverse.fallback_to_hints =
        get_bool(*reverse, "fallback_to_hints", o.reverse.fallback_to_hints);
  }
  o.stop_after = get_string(v, "stop_after");
  o.print_after = get_string(v, "print_after");
  *out = o;
  return true;
}

json::Value interp_options_to_json(const interp::InterpOptions& o) {
  json::Value out = json::Value::object();
  out.set("engine", o.engine == interp::Engine::Tree ? "tree" : "bytecode")
      .set("threads", o.num_threads)
      .set("enable_parallel", o.enable_parallel)
      .set("max_steps", o.max_steps)
      .set("check_bounds", o.check_bounds);
  return out;
}

bool interp_options_from_json(const json::Value& v,
                              interp::InterpOptions* out, std::string* err) {
  interp::InterpOptions o;
  if (!v.is_object()) {
    if (err) *err = "interp options must be an object";
    return false;
  }
  std::string engine = get_string(v, "engine");
  if (engine.empty() || engine == "bytecode") {
    o.engine = interp::Engine::Bytecode;
  } else if (engine == "tree") {
    o.engine = interp::Engine::Tree;
  } else {
    if (err) *err = "unknown engine: " + engine;
    return false;
  }
  o.num_threads = static_cast<int>(get_int(v, "threads", o.num_threads));
  if (o.num_threads < 1) o.num_threads = 1;
  o.enable_parallel = get_bool(v, "enable_parallel", o.enable_parallel);
  o.max_steps = get_int(v, "max_steps", o.max_steps);
  o.check_bounds = get_bool(v, "check_bounds", o.check_bounds);
  *out = o;
  return true;
}

namespace {

json::Value compile_result_to_json(const service::CompileResult& r) {
  json::Value loops = json::Value::array();
  for (int64_t id : r.parallel_loops) loops.push(id);
  json::Value passes = json::Value::array();
  for (const auto& p : r.timings.passes) {
    json::Value rec = json::Value::object();
    rec.set("name", p.name)
        .set("wall_ms", p.wall_ms)
        .set("units", static_cast<int64_t>(p.units))
        .set("diags", static_cast<int64_t>(p.diagnostics));
    // v6 per-boundary counters, emitted only when non-zero so pre-v6
    // bodies are unchanged for non-snapshotting runs.
    if (p.unit_hits + p.unit_misses > 0) {
      rec.set("unit_hits", static_cast<int64_t>(p.unit_hits))
          .set("unit_misses", static_cast<int64_t>(p.unit_misses))
          .set("unit_disk_hits", static_cast<int64_t>(p.unit_disk_hits))
          .set("unit_peer_hits", static_cast<int64_t>(p.unit_peer_hits))
          .set("unit_invalidated", static_cast<int64_t>(p.unit_invalidated));
    }
    passes.push(std::move(rec));
  }
  json::Value timings = json::Value::object();
  timings.set("total_ms", r.timings.total_ms)
      .set("passes", std::move(passes));
  json::Value out = json::Value::object();
  out.set("ok", r.ok)
      .set("error", r.error)
      .set("cache_hit", r.cache_hit)
      .set("peer_hit", r.peer_hit)
      .set("parallel_loops", std::move(loops))
      .set("code_lines", static_cast<int64_t>(r.code_lines))
      .set("dep_tests", static_cast<int64_t>(r.dep_tests))
      .set("dep_tests_unique", static_cast<int64_t>(r.dep_tests_unique))
      .set("unit_hits", static_cast<int64_t>(r.unit_hits))
      .set("unit_misses", static_cast<int64_t>(r.unit_misses))
      .set("unit_invalidated", static_cast<int64_t>(r.unit_invalidated))
      .set("unit_disk_hits", static_cast<int64_t>(r.unit_disk_hits))
      .set("unit_peer_hits", static_cast<int64_t>(r.unit_peer_hits))
      .set("timings", std::move(timings))
      .set("stopped_early", r.stopped_early)
      .set("program", r.program_text);
  if (!r.print_dump.empty()) out.set("print_dump", r.print_dump);
  return out;
}

service::CompileResult compile_result_from_json(const json::Value& v) {
  service::CompileResult r;
  r.ok = get_bool(v, "ok", false);
  r.error = get_string(v, "error");
  r.cache_hit = get_bool(v, "cache_hit", false);
  r.peer_hit = get_bool(v, "peer_hit", false);
  if (const json::Value* loops = v.find("parallel_loops")) {
    for (const json::Value& id : loops->items())
      r.parallel_loops.insert(id.as_int());
  }
  r.code_lines = static_cast<size_t>(get_int(v, "code_lines", 0));
  r.dep_tests = static_cast<size_t>(get_int(v, "dep_tests", 0));
  r.dep_tests_unique = static_cast<size_t>(get_int(v, "dep_tests_unique", 0));
  r.unit_hits = static_cast<size_t>(get_int(v, "unit_hits", 0));
  r.unit_misses = static_cast<size_t>(get_int(v, "unit_misses", 0));
  r.unit_invalidated = static_cast<size_t>(get_int(v, "unit_invalidated", 0));
  r.unit_disk_hits = static_cast<size_t>(get_int(v, "unit_disk_hits", 0));
  r.unit_peer_hits = static_cast<size_t>(get_int(v, "unit_peer_hits", 0));
  if (const json::Value* t = v.find("timings")) {
    if (const json::Value* total = t->find("total_ms"))
      r.timings.total_ms = total->as_double();
    if (const json::Value* passes = t->find("passes")) {
      for (const json::Value& rec : passes->items()) {
        pm::PassRecord p;
        p.name = get_string(rec, "name");
        if (const json::Value* w = rec.find("wall_ms"))
          p.wall_ms = w->as_double();
        p.units = static_cast<int>(get_int(rec, "units", 0));
        p.diagnostics = static_cast<int>(get_int(rec, "diags", 0));
        p.unit_hits = static_cast<int>(get_int(rec, "unit_hits", 0));
        p.unit_misses = static_cast<int>(get_int(rec, "unit_misses", 0));
        p.unit_disk_hits = static_cast<int>(get_int(rec, "unit_disk_hits", 0));
        p.unit_peer_hits = static_cast<int>(get_int(rec, "unit_peer_hits", 0));
        p.unit_invalidated =
            static_cast<int>(get_int(rec, "unit_invalidated", 0));
        r.timings.passes.push_back(std::move(p));
      }
    }
  }
  r.stopped_early = get_bool(v, "stopped_early", false);
  r.print_dump = get_string(v, "print_dump");
  r.program_text = get_string(v, "program");
  return r;
}

json::Value run_payload_to_json(const RunPayload& r) {
  json::Value out = json::Value::object();
  out.set("ok", r.ok)
      .set("stopped", r.stopped)
      .set("stop_message", r.stop_message)
      .set("error", r.error)
      .set("output", r.output)
      .set("statements", r.statements)
      .set("statements_parallel", r.statements_parallel)
      .set("instructions", r.instructions)
      .set("wall_ms", r.wall_ms);
  return out;
}

RunPayload run_payload_from_json(const json::Value& v) {
  RunPayload r;
  r.ok = get_bool(v, "ok", false);
  r.stopped = get_bool(v, "stopped", false);
  r.stop_message = get_string(v, "stop_message");
  r.error = get_string(v, "error");
  r.output = get_string(v, "output");
  r.statements = static_cast<uint64_t>(get_int(v, "statements", 0));
  r.statements_parallel =
      static_cast<uint64_t>(get_int(v, "statements_parallel", 0));
  r.instructions = static_cast<uint64_t>(get_int(v, "instructions", 0));
  if (const json::Value* w = v.find("wall_ms")) r.wall_ms = w->as_double();
  return r;
}

json::Value worker_info_to_json(const WorkerInfo& w) {
  json::Value out = json::Value::object();
  out.set("id", w.id).set("host", w.host).set("port", w.port);
  return out;
}

WorkerInfo worker_info_from_json(const json::Value& v) {
  WorkerInfo w;
  w.id = get_string(v, "id");
  w.host = get_string(v, "host");
  w.port = static_cast<int>(get_int(v, "port", 0));
  return w;
}

json::Value worker_load_to_json(const WorkerLoad& l) {
  json::Value out = json::Value::object();
  out.set("queue_depth", l.queue_depth)
      .set("running", l.running)
      .set("cache_entries", l.cache_entries)
      .set("cache_hits", l.cache_hits)
      .set("cache_misses", l.cache_misses)
      .set("peer_hits", l.peer_hits);
  // v5: emitted only when set so pre-v5 heartbeat bodies are unchanged.
  if (!l.hist.empty()) out.set("hist", l.hist);
  return out;
}

WorkerLoad worker_load_from_json(const json::Value& v) {
  WorkerLoad l;
  l.queue_depth = get_int(v, "queue_depth", 0);
  l.running = get_int(v, "running", 0);
  l.cache_entries = static_cast<uint64_t>(get_int(v, "cache_entries", 0));
  l.cache_hits = static_cast<uint64_t>(get_int(v, "cache_hits", 0));
  l.cache_misses = static_cast<uint64_t>(get_int(v, "cache_misses", 0));
  l.peer_hits = static_cast<uint64_t>(get_int(v, "peer_hits", 0));
  l.hist = get_string(v, "hist");
  return l;
}

// Compile/run (and forwards of them) share the same payload fields.
bool carries_compile_payload(RequestType t, RequestType inner) {
  if (t == RequestType::Forward)
    return inner == RequestType::Compile || inner == RequestType::Run;
  return t == RequestType::Compile || t == RequestType::Run;
}

// compile_batch (and forwards of it) carry the batch array instead.
bool carries_batch_payload(RequestType t, RequestType inner) {
  return t == RequestType::CompileBatch ||
         (t == RequestType::Forward && inner == RequestType::CompileBatch);
}

json::Value batch_item_to_json(const BatchItem& b) {
  json::Value out = json::Value::object();
  out.set("name", b.name)
      .set("source", b.source)
      .set("annotations", b.annotations)
      .set("options", pipeline_options_to_json(b.options));
  return out;
}

}  // namespace

json::Value request_to_json(const Request& r) {
  json::Value out = json::Value::object();
  out.set("v", r.version)
      .set("type", request_type_name(r.type))
      .set("id", r.id);
  // v5 trace context, emitted only when set: pre-v5 bodies are unchanged.
  if (r.trace) out.set("trace", true);
  if (r.trace_id) out.set("trace_id", format_key(r.trace_id));
  if (carries_compile_payload(r.type, r.inner)) {
    out.set("name", r.name)
        .set("source", r.source)
        .set("annotations", r.annotations)
        .set("options", pipeline_options_to_json(r.options));
  }
  if (carries_batch_payload(r.type, r.inner)) {
    json::Value batch = json::Value::array();
    for (const auto& b : r.batch) batch.push(batch_item_to_json(b));
    out.set("batch", std::move(batch));
  }
  if ((carries_compile_payload(r.type, r.inner) ||
       carries_batch_payload(r.type, r.inner)) &&
      r.deadline_ms > 0)
    out.set("deadline_ms", r.deadline_ms);
  bool wants_interp =
      r.type == RequestType::Run ||
      (r.type == RequestType::Forward && r.inner == RequestType::Run);
  if (wants_interp) out.set("interp", interp_options_to_json(r.interp));
  switch (r.type) {
    case RequestType::Register:
      out.set("worker", worker_info_to_json(r.worker));
      break;
    case RequestType::Heartbeat:
      out.set("worker", worker_info_to_json(r.worker))
          .set("load", worker_load_to_json(r.load));
      if (r.leaving) out.set("leaving", true);
      break;
    case RequestType::CacheProbe:
      out.set("key", r.key);
      break;
    case RequestType::CacheFill:
      out.set("key", r.key).set("payload", r.payload);
      break;
    case RequestType::UnitProbe:
      out.set("key", r.key);
      break;
    case RequestType::UnitFill:
      out.set("key", r.key)
          .set("payload", r.payload)
          .set("boundary", r.boundary);
      break;
    case RequestType::Forward:
      out.set("inner", request_type_name(r.inner)).set("attempt", r.attempt);
      break;
    default:
      break;
  }
  return out;
}

bool request_from_json(const json::Value& v, Request* out, std::string* err) {
  if (!v.is_object()) {
    if (err) *err = "request must be a JSON object";
    return false;
  }
  int64_t version = get_int(v, "v", 0);
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    if (err)
      *err = "unsupported protocol version " + std::to_string(version) +
             " (supported " + std::to_string(kMinProtocolVersion) + ".." +
             std::to_string(kProtocolVersion) + ")";
    return false;
  }
  Request r;
  r.version = static_cast<int>(version);
  std::string type = get_string(v, "type");
  if (type == "compile") r.type = RequestType::Compile;
  else if (type == "run") r.type = RequestType::Run;
  else if (type == "metrics") r.type = RequestType::Metrics;
  else if (type == "ping") r.type = RequestType::Ping;
  else if (type == "hello") r.type = RequestType::Hello;
  else if (type == "register") r.type = RequestType::Register;
  else if (type == "heartbeat") r.type = RequestType::Heartbeat;
  else if (type == "cache_probe") r.type = RequestType::CacheProbe;
  else if (type == "cache_fill") r.type = RequestType::CacheFill;
  else if (type == "forward") r.type = RequestType::Forward;
  else if (type == "compile_batch") r.type = RequestType::CompileBatch;
  else if (type == "stats") r.type = RequestType::Stats;
  else if (type == "unit_probe") r.type = RequestType::UnitProbe;
  else if (type == "unit_fill") r.type = RequestType::UnitFill;
  else {
    if (err) *err = "unknown request type: " + type;
    return false;
  }
  r.id = get_int(v, "id", 0);
  r.trace = get_bool(v, "trace", false);
  std::string trace_id = get_string(v, "trace_id");
  if (!trace_id.empty() && !parse_key(trace_id, &r.trace_id)) {
    if (err) *err = "trace_id must be hex";
    return false;
  }
  if (r.type == RequestType::Forward) {
    // The inner type decides which payload shape the forward carries, so
    // it must be resolved before the payload fields.
    std::string inner = get_string(v, "inner");
    if (inner == "compile") r.inner = RequestType::Compile;
    else if (inner == "run") r.inner = RequestType::Run;
    else if (inner == "compile_batch") r.inner = RequestType::CompileBatch;
    else {
      if (err) *err = "forward requires inner type compile, run, or "
                      "compile_batch";
      return false;
    }
  }
  if (carries_compile_payload(r.type, r.inner)) {
    const json::Value* source = v.find("source");
    if (!source || !source->is_string()) {
      if (err) *err = "compile/run request requires a string \"source\"";
      return false;
    }
    r.source = source->as_string();
    r.name = get_string(v, "name");
    r.annotations = get_string(v, "annotations");
    r.deadline_ms = get_int(v, "deadline_ms", 0);
    if (const json::Value* opts = v.find("options")) {
      if (!pipeline_options_from_json(*opts, &r.options, err)) return false;
    }
  }
  if (carries_batch_payload(r.type, r.inner)) {
    const json::Value* batch = v.find("batch");
    if (!batch || !batch->is_array()) {
      if (err) *err = "compile_batch requires a \"batch\" array";
      return false;
    }
    r.deadline_ms = get_int(v, "deadline_ms", 0);
    for (const json::Value& item : batch->items()) {
      if (!item.is_object()) {
        if (err) *err = "batch items must be objects";
        return false;
      }
      const json::Value* source = item.find("source");
      if (!source || !source->is_string()) {
        if (err) *err = "batch items require a string \"source\"";
        return false;
      }
      BatchItem b;
      b.name = get_string(item, "name");
      b.source = source->as_string();
      b.annotations = get_string(item, "annotations");
      if (const json::Value* opts = item.find("options")) {
        if (!pipeline_options_from_json(*opts, &b.options, err)) return false;
      }
      r.batch.push_back(std::move(b));
    }
  }
  switch (r.type) {
    case RequestType::Run:
      if (const json::Value* io = v.find("interp")) {
        if (!interp_options_from_json(*io, &r.interp, err)) return false;
      }
      break;
    case RequestType::Register:
    case RequestType::Heartbeat: {
      const json::Value* w = v.find("worker");
      if (!w || !w->is_object()) {
        if (err) *err = "register/heartbeat requires a \"worker\" object";
        return false;
      }
      r.worker = worker_info_from_json(*w);
      if (r.worker.id.empty()) {
        if (err) *err = "worker id must be non-empty";
        return false;
      }
      if (const json::Value* l = v.find("load"))
        r.load = worker_load_from_json(*l);
      r.leaving = get_bool(v, "leaving", false);
      break;
    }
    case RequestType::CacheProbe:
    case RequestType::CacheFill: {
      r.key = get_string(v, "key");
      uint64_t parsed;
      if (!parse_key(r.key, &parsed)) {
        if (err) *err = "cache_probe/cache_fill requires a hex \"key\"";
        return false;
      }
      if (r.type == RequestType::CacheFill) r.payload = get_string(v, "payload");
      break;
    }
    case RequestType::UnitProbe:
    case RequestType::UnitFill: {
      r.key = get_string(v, "key");
      uint64_t parsed;
      if (!parse_key(r.key, &parsed)) {
        if (err) *err = "unit_probe/unit_fill requires a hex \"key\"";
        return false;
      }
      if (r.type == RequestType::UnitFill) {
        r.payload = get_string(v, "payload");
        r.boundary = get_string(v, "boundary");
      }
      break;
    }
    case RequestType::Forward: {
      r.attempt = static_cast<int>(get_int(v, "attempt", 0));
      if (r.inner == RequestType::Run) {
        if (const json::Value* io = v.find("interp")) {
          if (!interp_options_from_json(*io, &r.interp, err)) return false;
        }
      }
      break;
    }
    default:
      break;
  }
  *out = r;
  return true;
}

json::Value response_to_json(const Response& r) {
  json::Value out = json::Value::object();
  out.set("v", kProtocolVersion)
      .set("id", r.id)
      .set("status", status_name(r.status));
  if (!r.error.empty()) out.set("error", r.error);
  if (r.has_result) out.set("result", compile_result_to_json(r.result));
  if (r.has_run) out.set("run", run_payload_to_json(r.run));
  if (r.metrics.is_object()) out.set("metrics", r.metrics);
  if (r.trace.is_object()) out.set("trace", r.trace);
  if (r.has_hello) {
    json::Value hello = json::Value::object();
    hello.set("min_version", r.hello.min_version)
        .set("max_version", r.hello.max_version)
        .set("role", r.hello.role)
        .set("draining", r.hello.draining)
        .set("binary", r.hello.binary);
    out.set("hello", std::move(hello));
  }
  if (r.found || !r.payload.empty()) {
    out.set("found", r.found);
    if (!r.payload.empty()) out.set("payload", r.payload);
  }
  if (r.has_peers) {
    json::Value peers = json::Value::array();
    for (const auto& p : r.peers) peers.push(worker_info_to_json(p));
    out.set("peers", std::move(peers));
  }
  if (r.has_batch) {
    json::Value batch = json::Value::array();
    for (const auto& item : r.batch) batch.push(compile_result_to_json(item));
    out.set("batch", std::move(batch));
  }
  return out;
}

bool response_from_json(const json::Value& v, Response* out,
                        std::string* err) {
  if (!v.is_object()) {
    if (err) *err = "response must be a JSON object";
    return false;
  }
  Response r;
  r.id = get_int(v, "id", 0);
  std::string status = get_string(v, "status");
  if (status == "ok") r.status = Status::Ok;
  else if (status == "error") r.status = Status::Error;
  else if (status == "overloaded") r.status = Status::Overloaded;
  else if (status == "deadline_exceeded") r.status = Status::DeadlineExceeded;
  else if (status == "unsupported_version") r.status = Status::UnsupportedVersion;
  else if (status == "worker_lost") r.status = Status::WorkerLost;
  else if (status == "protocol_error") r.status = Status::ProtocolError;
  else {
    if (err) *err = "unknown response status: " + status;
    return false;
  }
  r.error = get_string(v, "error");
  if (const json::Value* result = v.find("result")) {
    r.has_result = true;
    r.result = compile_result_from_json(*result);
  }
  if (const json::Value* run = v.find("run")) {
    r.has_run = true;
    r.run = run_payload_from_json(*run);
  }
  if (const json::Value* metrics = v.find("metrics")) r.metrics = *metrics;
  if (const json::Value* trace = v.find("trace")) r.trace = *trace;
  if (const json::Value* hello = v.find("hello")) {
    r.has_hello = true;
    r.hello.min_version =
        static_cast<int>(get_int(*hello, "min_version", kMinProtocolVersion));
    r.hello.max_version =
        static_cast<int>(get_int(*hello, "max_version", kProtocolVersion));
    r.hello.role = get_string(*hello, "role");
    r.hello.draining = get_bool(*hello, "draining", false);
    r.hello.binary = get_bool(*hello, "binary", false);
  }
  r.found = get_bool(v, "found", false);
  r.payload = get_string(v, "payload");
  if (const json::Value* peers = v.find("peers")) {
    r.has_peers = true;
    for (const json::Value& p : peers->items())
      r.peers.push_back(worker_info_from_json(p));
  }
  if (const json::Value* batch = v.find("batch")) {
    r.has_batch = true;
    for (const json::Value& item : batch->items())
      r.batch.push_back(compile_result_from_json(item));
  }
  *out = r;
  return true;
}

}  // namespace ap::net
