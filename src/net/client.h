// Blocking client for the apserved wire protocol: one TCP connection, one
// outstanding request at a time. Intended for apclient, tests, and the
// throughput bench — callers wanting concurrency open several Clients.
#pragma once

#include <optional>
#include <string>

#include "net/protocol.h"
#include "net/wire.h"

namespace ap::net {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  // Connects to 127.0.0.1:port. `recv_timeout_ms` bounds each blocking
  // read (0 = wait forever).
  bool connect(int port, std::string* err, int recv_timeout_ms = 0);
  void close();
  bool connected() const { return fd_ >= 0; }

  // Sends the request and blocks for the matching response. False with
  // *err on transport failure (send/recv error, timeout, connection
  // closed, undecodable response) — protocol-level failures (overloaded,
  // deadline_exceeded, ...) are successful calls with that status in
  // *resp. Assigns a fresh id when req.id == 0.
  bool call(Request req, Response* resp, std::string* err);

  // Version negotiation: sends a `hello` and returns the server's
  // advertised version range, role, and drain state. False with *err on
  // transport failure or a server that does not answer hello.
  bool hello(HelloInfo* info, std::string* err);

  // Raw frame transport (exposed for protocol-hardening tests that must
  // send malformed payloads).
  bool send_frame(std::string_view payload, std::string* err);
  bool send_raw(std::string_view bytes, std::string* err);
  std::optional<std::string> recv_frame(std::string* err);

 private:
  int fd_ = -1;
  int64_t next_id_ = 1;
  FrameReader reader_{kDefaultMaxFrame};
};

}  // namespace ap::net
