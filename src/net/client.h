// Blocking client for the apserved wire protocol: one TCP connection.
//
// Two usage shapes:
//   - call(): one outstanding request at a time (apclient single-shot,
//     tests). Sends, then blocks for the next response frame.
//   - submit()/recv_any(): pipelining. Submit N requests back to back,
//     then collect N responses as the server finishes them — responses
//     may return out of order and carry the echoed request id, which is
//     how callers re-associate them (`apclient --pipeline N` drives
//     this; net::Channel wraps it in a thread-safe multiplexer).
//
// Codec: JSON by default (interoperates with any v1+ server). After
// negotiate() — or an explicit set_binary(true) — requests are encoded
// with the v4 binary TLV codec (binproto.h). Received frames are always
// decoded by sniffing the codec byte, so a client can speak JSON while
// accepting binary and vice versa.
//
// Not thread-safe; callers wanting concurrency open several Clients or
// use net::Channel.
#pragma once

#include <optional>
#include <string>

#include "net/protocol.h"
#include "net/wire.h"

namespace ap::net {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  // Connects to host:port (hostname or IPv4 literal). `recv_timeout_ms`
  // bounds each blocking read (0 = wait forever).
  bool connect(const std::string& host, int port, std::string* err,
               int recv_timeout_ms = 0);
  // Loopback shorthand, unchanged from v3 and earlier.
  bool connect(int port, std::string* err, int recv_timeout_ms = 0);
  void close();
  bool connected() const { return fd_ >= 0; }

  // Selects the request codec explicitly. Binary frames are only
  // understood by v4 servers — use negotiate() unless the peer's version
  // is already known.
  void set_binary(bool on) { binary_ = on; }
  bool binary() const { return binary_; }

  // Hello-based codec negotiation: switches to the binary codec iff the
  // server advertises it (HelloInfo::binary). Returns false only on
  // transport failure — a JSON-only peer is a successful negotiation that
  // leaves the codec on JSON.
  bool negotiate(std::string* err, HelloInfo* info = nullptr);

  // Sends the request and blocks for the next response. False with *err
  // on transport failure (send/recv error, timeout, connection closed,
  // undecodable response) — protocol-level failures (overloaded,
  // deadline_exceeded, ...) are successful calls with that status in
  // *resp. Assigns a fresh id when req.id == 0.
  bool call(Request req, Response* resp, std::string* err);

  // Pipelining: send without waiting. The id assigned to the request
  // (fresh when req.id == 0) is stored in *id_out so the caller can match
  // the eventual response.
  bool submit(Request req, int64_t* id_out, std::string* err);

  // Blocks for the next response frame, whichever request it answers.
  bool recv_any(Response* resp, std::string* err);

  // Version negotiation: sends a `hello` and returns the server's
  // advertised version range, role, and drain state. False with *err on
  // transport failure or a server that does not answer hello.
  bool hello(HelloInfo* info, std::string* err);

  // Raw frame transport (exposed for protocol-hardening tests that must
  // send malformed payloads).
  bool send_frame(std::string_view payload, std::string* err);
  bool send_raw(std::string_view bytes, std::string* err);
  std::optional<std::string> recv_frame(std::string* err);

 private:
  int fd_ = -1;
  int64_t next_id_ = 1;
  bool binary_ = false;
  FrameReader reader_{kDefaultMaxFrame};
  std::string sendbuf_;  // reused per submit; frame built in place
};

}  // namespace ap::net
