// Wire protocol v4: the binary TLV codec.
//
// Encodes the exact message set of protocol.h (every request and response
// type, v1–v4) as a compact tag-value stream instead of JSON. The first
// payload byte is the magic 0xB4 — which can never open a JSON document —
// so binary and JSON frames coexist on one connection and the receiver
// dispatches per frame. A server answers each request in the codec it
// arrived in; clients switch to binary only after a `hello` advertised
// support (HelloInfo::binary / max_version >= 4).
//
// Layout of one payload:
//
//   +------+------+----------------------------+
//   | 0xB4 | kind | fields ... | 0x00 end tag  |
//   +------+------+----------------------------+
//
// `kind` is 0x01 for requests, 0x02 for responses. Each field is one tag
// byte followed by a value whose wire form is fixed by the tag:
// unsigned LEB128 varints for counters and enums, zigzag varints for
// signed integers, length-prefixed bytes for strings, 8 little-endian
// bytes for doubles, a single byte for bools, and end-tag-terminated
// sub-streams (same tag-value form, closed by 0x00 — no length prefix,
// so encoding is single-pass) for nested messages. Unknown tags
// cannot be skipped (the type is not self-describing), so they are
// decode errors — within one process this never happens, and
// cross-version peers negotiate down to JSON, which ignores unknown
// keys.
//
// The equivalence contract, held by tests/net_test.cpp: for every
// message m, json(decode_binary(encode_binary(m))) is byte-identical to
// json(m). The binary codec adds a transport encoding, never a semantic.
//
// Decoders never throw and never read out of bounds; any truncated,
// oversized, or malformed stream returns false with *err set, which the
// server maps to `protocol_error`.
#pragma once

#include <string>
#include <string_view>

#include "net/protocol.h"

namespace ap::net {

// First byte of every binary payload; never '{' or whitespace, so a JSON
// receiver cannot confuse the two.
inline constexpr unsigned char kBinaryMagic = 0xB4;

// True when `payload` claims to be a binary v4 frame (magic byte match —
// the cheap per-frame codec dispatch).
inline bool is_binary_frame(std::string_view payload) {
  return !payload.empty() &&
         static_cast<unsigned char>(payload[0]) == kBinaryMagic;
}

// Append the binary encoding of the message to *out (existing contents
// are preserved — callers reuse per-connection scratch buffers so the
// warm path does not allocate per frame once capacity has grown).
void encode_request_binary(const Request& r, std::string* out);
void encode_response_binary(const Response& r, std::string* out);

// Convenience forms returning a fresh buffer.
std::string encode_request_binary(const Request& r);
std::string encode_response_binary(const Response& r);

// Strict decoders. False with *err on any malformed input (bad magic,
// bad kind, unknown tag, truncated value, trailing bytes).
bool decode_request_binary(std::string_view payload, Request* out,
                           std::string* err);
bool decode_response_binary(std::string_view payload, Response* out,
                            std::string* err);

}  // namespace ap::net
