// The apserved serving core: an epoll(7)-based event loop over
// nonblocking loopback TCP sockets, speaking the length-prefixed protocol
// of protocol.h in either codec — JSON (v1–v4) or binary TLV (v4,
// binproto.h), dispatched per frame by the payload's first byte and
// answered in the codec each request arrived in. Building with
// -DANNOPAR_NET_POLL=ON swaps the readiness mechanism back to poll(2)
// for platforms without epoll; everything above the readiness layer is
// shared.
//
// Threading model
//   One event-loop thread owns all socket I/O: accepting, reading frames,
//   and flushing per-connection write queues. Compile/run work never runs
//   on the loop thread; admitted requests enter a bounded queue drained by
//   `threads` worker lanes, each dispatching through the compilation
//   service (`service::Scheduler::run_one`), so the daemon shares the
//   content-addressed cache — and its warm-hit fast path — with the batch
//   CLI. Workers deliver finished responses into the owning connection's
//   outbox and nudge the loop through a self-pipe.
//
// Pipelining
//   Clients may submit any number of requests back to back on one
//   connection; each admitted request is answered with a frame carrying
//   its echoed id, in completion order (out-of-order responses are the
//   v4 contract — they always were possible, v4 just names it). A
//   `compile_batch` request carries N files in one frame and is answered
//   as one frame of N results.
//
// Hot-path memory discipline
//   Per-connection buffers are reused end to end: the FrameReader
//   recycles its input buffer (offset-based consumption, no per-frame
//   erase), requests are decoded straight from a view into it, and
//   responses are encoded in place into the connection's output buffers
//   (begin_frame/end_frame — no intermediate payload string). Output uses
//   a front/back double buffer flushed with writev: workers append to the
//   back buffer while the loop drains the front, and the two swap in O(1)
//   when the front empties, so a warm-cache hit performs no per-frame
//   heap allocation once the connection's buffers have grown.
//
// Robustness invariants (tested in tests/net_test.cpp)
//   - Backpressure, not buffering: when the admission queue holds
//     `max_queue` requests, new work is answered `overloaded` immediately.
//     An accepted request is always answered (ok/error/deadline_exceeded)
//     unless its client disconnects first.
//   - Deadlines are enforced by the event loop: a request that misses its
//     deadline is answered `deadline_exceeded` right then; whatever a
//     worker later computes for it is discarded.
//   - A malformed or oversized frame draws a `protocol_error` response and
//     the connection is closed (the stream cannot be resynchronized). A
//     request claiming an unsupported protocol version draws a structured
//     `unsupported_version` response and the connection STAYS open — the
//     client can `hello` and fall back.
//   - Idle reaping: a connection with no socket activity, no in-flight
//     work, and an empty outbox for `idle_timeout_ms` is closed by the
//     loop, so a silent or half-open peer cannot pin an fd forever.
//   - Graceful drain (begin_drain(), or a byte 'q' on wake_fd() — the
//     async-signal-safe path for SIGINT/SIGTERM handlers): stop accepting
//     connections, answer new requests `overloaded`, finish all queued and
//     running jobs, flush every outbox, then shut down. A hard
//     `drain_timeout_ms` bounds the wait against clients that never read.
//
// Fleet hooks (src/dist)
//   The serving core is role-agnostic: a coordinator is a Server whose
//   `executor` forwards work to workers instead of compiling, and both
//   coordinators and workers answer control-plane messages
//   (register/heartbeat/cache_probe/cache_fill) synchronously on the loop
//   thread through `control`. `extra_metrics` lets a role append its own
//   sections (fleet membership, peer-cache counters) to metrics responses.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.h"
#include "net/wire.h"
#include "obs/flight_recorder.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "service/scheduler.h"

namespace ap::net {

struct ServerOptions {
  int port = 0;          // 0 = kernel-assigned ephemeral port
  int threads = 1;       // worker lanes executing compile/run jobs
  size_t max_queue = 256;  // admission-queue bound (backpressure threshold)
  // Default per-request deadline; requests may override with a smaller or
  // larger "deadline_ms". 0 disables deadlines entirely.
  int64_t request_timeout_ms = 30'000;
  int64_t drain_timeout_ms = 30'000;  // hard bound on graceful drain
  // Connections with no activity, no in-flight requests, and nothing to
  // flush for this long are closed by the loop. 0 disables reaping.
  int64_t idle_timeout_ms = 300'000;
  size_t max_frame_bytes = kDefaultMaxFrame;
  // Role reported in `hello` responses: "single", "coordinator", "worker".
  std::string role = "single";
  service::Scheduler* scheduler = nullptr;  // required unless `executor` set
  service::Telemetry* telemetry = nullptr;  // optional: job/exec/server rows
  // When set, worker lanes dispatch admitted requests here instead of the
  // built-in scheduler path (the coordinator's shard/forward/failover).
  // A traced request passes a non-null span vector; the executor appends
  // the spans it measured (forward attempts, grafted worker subtrees) and
  // the serving core roots them under its own "request" span.
  std::function<Response(const Request&, std::vector<obs::Span>*)> executor;
  // Loop-thread handler for fleet control-plane requests (register,
  // heartbeat, cache_probe, cache_fill, unit_probe, unit_fill). Return
  // true when handled; false draws a structured `error` reply ("not a
  // fleet endpoint").
  std::function<bool(const Request&, Response*)> control;
  // Appends role-specific sections to metrics responses.
  std::function<void(json::Value*)> extra_metrics;
  // Appends role-specific sections to live `stats` responses (the
  // coordinator's fleet-wide histogram merge).
  std::function<void(json::Value*)> extra_stats;
  // Flight recorder: requests slower than this dump the recent-event ring
  // to stderr (0 = never); the ring holds `flight_capacity` events and is
  // also dumped by a 'u' byte on wake_fd() (the SIGUSR1 hook).
  int64_t slow_ms = 0;
  size_t flight_capacity = 256;
  size_t trace_capacity = 64;  // server-side sample of traced span trees
};

class Server {
 public:
  explicit Server(const ServerOptions& opts);
  ~Server();  // begins drain and waits if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and spawns the loop + worker threads. False with *err
  // on failure (nothing spawned).
  bool start(std::string* err);

  // The bound port (valid after start()).
  int port() const { return port_; }

  // Write end of the self-pipe. write(wake_fd(), "q", 1) begins a graceful
  // drain and is async-signal-safe — this is the SIGTERM/SIGINT hook.
  int wake_fd() const { return wake_w_; }

  // Thread-safe graceful-drain trigger (not for signal handlers).
  void begin_drain();

  // Blocks until drain completes and all threads are joined. Records
  // server stats into the telemetry sink (when attached) before returning.
  void wait();

  bool draining() const { return draining_.load(); }

  service::ServerStats stats() const;

  // Load snapshot for heartbeats: admitted-but-not-running and running.
  int64_t queue_depth() const;
  int64_t jobs_running() const;

  // Live latency distributions for heartbeats and the stats plane: one
  // entry per request type seen ("compile", "metrics", ...) plus one per
  // cache outcome ("cache:memory_hit", "cache:hit", "cache:peer",
  // "cache:miss"). Empty histograms are omitted.
  std::vector<std::pair<std::string, obs::HistogramSnapshot>>
  histogram_snapshots() const;

  // Server-side sample of recent traced span trees (newest-match lookup
  // by trace id); null when the id never ran traced or has aged out.
  const obs::TraceStore& traces() const { return traces_; }

 private:
  enum JobPhase : int { kPending = 0, kRunning = 1, kDone = 2, kAbandoned = 3 };

  struct JobState {
    Request req;
    uint64_t conn_id = 0;
    bool binary = false;  // reply in the codec the request arrived in
    std::chrono::steady_clock::time_point deadline;  // max() = none
    // Admission time: the queue span (admit → worker pickup) and the
    // request's total wall both measure from here.
    std::chrono::steady_clock::time_point t_admit;
    std::atomic<int> phase{kPending};
  };

  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    FrameReader reader;
    std::mutex out_mu;
    // Output double buffer: writers (loop handlers, worker deliver)
    // append encoded frames to `out_back`; the flusher drains `out_front`
    // from `front_pos` and the two swap in O(1) when the front empties.
    // Both writev'd together, both keep their capacity across frames.
    std::string out_front;
    std::string out_back;
    size_t front_pos = 0;
    bool closing = false;   // loop thread only: close once outbox drains
    uint32_t epoll_mask = 0;  // loop thread only: current epoll interest
    // Idle-reap bookkeeping: last socket/deliver activity (steady-clock
    // ms) and the number of admitted requests not yet answered.
    std::atomic<int64_t> last_activity_ms{0};
    std::atomic<int> inflight{0};
    explicit Connection(size_t max_frame) : reader(max_frame) {}
    // out_mu must be held.
    size_t out_bytes() const {
      return out_front.size() - front_pos + out_back.size();
    }
  };

  void loop_main();
  void worker_main();

  // Loop thread helpers.
  void accept_new_connections();
  void read_connection(const std::shared_ptr<Connection>& conn);
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    std::string_view payload);
  void flush_connection(const std::shared_ptr<Connection>& conn);
  void update_interest(const std::shared_ptr<Connection>& conn);
  void close_connection(uint64_t conn_id);
  void sweep_deadlines(std::chrono::steady_clock::time_point now);
  void sweep_idle(std::chrono::steady_clock::time_point now);
  json::Value build_metrics() const;
  // Everything metrics reports plus the latency plane: per-type and
  // per-cache-outcome quantile summaries, trace-store counters, and the
  // role's extra_stats sections. Answered inline on the loop thread.
  json::Value build_stats() const;

  // Observability taps, callable from any thread.
  void record_latency(RequestType type, double wall_ms);
  void record_cache_outcome(const char* outcome, double wall_ms);
  void record_flight(uint64_t trace_id, int64_t request_id, const char* type,
                     const char* outcome, double wall_ms,
                     const std::string& digest);
  // Mints a trace id for a traced request that arrived without one (the
  // fleet entry point); forwarded hops keep the id they were handed.
  uint64_t mint_trace_id();

  // Encodes `resp` in the connection's reply codec directly into its
  // output buffer (with the sampled bytes-saved estimate for binary
  // replies). Callable from any thread.
  void enqueue_response(const std::shared_ptr<Connection>& conn,
                        const Response& resp, bool binary);

  // Any thread: queue an encoded response on a live connection and nudge
  // the loop. False when the connection is gone.
  bool deliver(uint64_t conn_id, const Response& resp, bool binary);
  void nudge();

  // Worker thread: execute one admitted request. When the request is
  // traced, appends the phase spans it measured to `spans` (non-null).
  Response execute(const Request& req, std::vector<obs::Span>* spans);

  ServerOptions opts_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;  // unused (-1) under the poll fallback
  int wake_r_ = -1, wake_w_ = -1;
  int port_ = 0;
  bool started_ = false;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};

  mutable std::mutex conns_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<JobState>> queue_;
  int jobs_running_ = 0;
  bool queue_closed_ = false;

  // Jobs with real deadlines, watched by the loop (loop thread only).
  std::vector<std::shared_ptr<JobState>> deadline_watch_;

  mutable std::mutex stats_mu_;
  service::ServerStats stats_;
  // Sampling for the bytes_saved_vs_json estimate: one binary reply per
  // stride is also JSON-encoded and the delta extrapolated, so the stat
  // costs a fraction of one codec, not 100% — the JSON encode runs on
  // the event-loop thread, inside the warm fast path it is measuring.
  static constexpr uint64_t kBytesSavedSampleStride = 256;
  uint64_t binary_reply_tick_ = 0;

  // Latency plane: lock-cheap log-bucketed histograms, one per request
  // type plus one per cache outcome. Indexed by RequestType value.
  static constexpr size_t kTypeHistCount =
      static_cast<size_t>(RequestType::UnitFill) + 1;
  std::array<obs::Histogram, kTypeHistCount> type_hist_;
  obs::Histogram cache_hist_memory_;  // loop-thread warm fast path
  obs::Histogram cache_hist_hit_;     // local (memory or disk) hit
  obs::Histogram cache_hist_peer_;    // adopted from a peer's cache
  obs::Histogram cache_hist_miss_;    // compiled fresh
  obs::FlightRecorder flight_;
  obs::TraceStore traces_;
  std::atomic<uint64_t> trace_seq_{0};
};

}  // namespace ap::net
